// Sparse integer histogram over packed uint64 keys.
//
// Backbone of the 2K/3K distributions: degree-pair and degree-triple
// counts are sparse (the paper, §6 footnote: sparsity grows faster than
// the nominal k^d size), so a table of non-zero bins is both the compact
// and the fast representation.  Counts are signed internally so
// incremental bookkeeping can assert it never drives a bin negative.
//
// Storage is a flat open-addressing linear-probe table (the FlatEdgeHash
// design: splitmix-finalized hash, power-of-two capacity, backward-shift
// deletion — no tombstones, no per-node allocations), because the bins
// sit on the 3K rewiring hot path: every ACCEPTED swap folds its
// wedge/triangle journal into these tables (DkState::commit_swap) and
// every targeting proposal prices ΔD3 with count() probes
// (ThreeKObjective::delta_if_applied).  A bin is live iff its count is
// non-zero — add() erases bins that return to zero — so occupancy needs
// no separate marker and key 0 needs no sentinel exception.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/keys.hpp"

namespace orbis::dk {

class SparseHistogram {
 public:
  /// Forward iteration over (key, count) pairs in unspecified order.
  /// Dereference yields pairs BY VALUE (bins are stored as parallel
  /// key/count arrays); mutating the histogram invalidates iterators.
  class const_iterator {
   public:
    using value_type = std::pair<std::uint64_t, std::int64_t>;
    using reference = value_type;
    using pointer = void;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    const_iterator(const SparseHistogram* owner, std::size_t slot)
        : owner_(owner), slot_(slot) {
      skip_empty();
    }

    value_type operator*() const {
      return {owner_->keys_[slot_], owner_->counts_[slot_]};
    }
    const_iterator& operator++() {
      ++slot_;
      skip_empty();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.slot_ == b.slot_;
    }

   private:
    void skip_empty() {
      while (owner_ != nullptr && slot_ < owner_->counts_.size() &&
             owner_->counts_[slot_] == 0) {
        ++slot_;
      }
    }
    const SparseHistogram* owner_ = nullptr;
    std::size_t slot_ = 0;
  };

  /// Lightweight iterable view of the live bins (the historical
  /// `bins()` interface; iteration order is unspecified).
  class BinView {
   public:
    explicit BinView(const SparseHistogram* owner) : owner_(owner) {}
    const_iterator begin() const { return {owner_, 0}; }
    const_iterator end() const { return {owner_, owner_->counts_.size()}; }

   private:
    const SparseHistogram* owner_;
  };

  std::int64_t count(std::uint64_t key) const {
    if (num_bins_ == 0) return 0;
    std::size_t i = index_of(key);
    while (counts_[i] != 0) {
      if (keys_[i] == key) return counts_[i];
      i = (i + 1) & mask_;
    }
    return 0;
  }

  /// Adds delta to a bin; removes the bin when it reaches zero.
  /// Throws std::logic_error if a bin would become negative (the
  /// histogram is left unchanged).
  void add(std::uint64_t key, std::int64_t delta);

  void increment(std::uint64_t key) { add(key, 1); }
  void decrement(std::uint64_t key) { add(key, -1); }

  std::size_t num_bins() const noexcept { return num_bins_; }

  std::int64_t total() const noexcept {
    std::int64_t sum = 0;
    for (const std::int64_t count : counts_) sum += count;
    return sum;
  }

  bool empty() const noexcept { return num_bins_ == 0; }
  void clear() noexcept;

  /// Bytes held by the key/count arrays (streaming memory accounting).
  std::size_t capacity_bytes() const noexcept {
    return keys_.capacity() * sizeof(std::uint64_t) +
           counts_.capacity() * sizeof(std::int64_t);
  }

  BinView bins() const noexcept { return BinView(this); }
  const_iterator begin() const { return bins().begin(); }
  const_iterator end() const { return bins().end(); }

  friend bool operator==(const SparseHistogram& a, const SparseHistogram& b);

  /// Sum over the union of bins of (a[key] - b[key])^2 — the paper's
  /// squared-difference distance D_d between current and target counts.
  static double squared_difference(const SparseHistogram& a,
                                   const SparseHistogram& b);

 private:
  std::size_t index_of(std::uint64_t key) const {
    return static_cast<std::size_t>(util::splitmix64_mix(key)) & mask_;
  }
  void grow();

  // Parallel key/count arrays; counts_[i] == 0 marks an empty slot.
  std::vector<std::uint64_t> keys_;
  std::vector<std::int64_t> counts_;
  std::size_t mask_ = 0;       // capacity - 1 (capacity is a power of two)
  std::size_t num_bins_ = 0;
};

}  // namespace orbis::dk
