#include "core/joint_degree_distribution.hpp"

#include <algorithm>
#include <map>

namespace orbis::dk {

JointDegreeDistribution JointDegreeDistribution::from_graph(const Graph& g) {
  JointDegreeDistribution jdd;
  const auto degrees = g.degree_sequence();
  for (const auto& e : g.edges()) {
    jdd.counts_.increment(
        util::pair_key(static_cast<std::uint32_t>(degrees[e.u]),
                       static_cast<std::uint32_t>(degrees[e.v])));
  }
  return jdd;
}

double JointDegreeDistribution::p_of(std::size_t k1, std::size_t k2) const {
  const std::int64_t total = num_edges();
  if (total == 0) return 0.0;
  const double mu = (k1 == k2) ? 2.0 : 1.0;
  return static_cast<double>(m_of(k1, k2)) * mu /
         (2.0 * static_cast<double>(total));
}

std::int64_t JointDegreeDistribution::endpoints_of_degree(std::size_t k) const {
  std::int64_t endpoints = 0;
  for (const auto& [key, count] : counts_.bins()) {
    const auto [k1, k2] = util::unpack_pair(key);
    if (k1 == k && k2 == k) {
      endpoints += 2 * count;
    } else if (k1 == k || k2 == k) {
      endpoints += count;
    }
  }
  return endpoints;
}

DegreeDistribution JointDegreeDistribution::project_to_1k() const {
  // k * n(k) = sum of endpoints of degree k; n(k) = that / k.
  std::map<std::size_t, std::int64_t> endpoint_sums;
  for (const auto& [key, count] : counts_.bins()) {
    const auto [k1, k2] = util::unpack_pair(key);
    if (k1 == k2) {
      endpoint_sums[k1] += 2 * count;
    } else {
      endpoint_sums[k1] += count;
      endpoint_sums[k2] += count;
    }
  }
  std::vector<std::size_t> degrees;
  for (const auto& [k, endpoints] : endpoint_sums) {
    util::ensures(k > 0, "JDD: zero-degree key cannot appear");
    util::ensures(endpoints % static_cast<std::int64_t>(k) == 0,
                  "JDD: endpoint count not divisible by degree");
    const auto nk = static_cast<std::size_t>(
        endpoints / static_cast<std::int64_t>(k));
    degrees.insert(degrees.end(), nk, k);
  }
  return DegreeDistribution::from_sequence(degrees);
}

std::vector<JointDegreeDistribution::Entry>
JointDegreeDistribution::entries() const {
  std::vector<Entry> result;
  result.reserve(counts_.num_bins());
  for (const auto& [key, count] : counts_.bins()) {
    const auto [k1, k2] = util::unpack_pair(key);
    result.push_back(Entry{k1, k2, count});
  }
  std::sort(result.begin(), result.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.k1, a.k2) < std::tie(b.k1, b.k2);
  });
  return result;
}

}  // namespace orbis::dk
