// Incremental dK bookkeeping — the engine room of every rewiring process.
//
// DkState maintains live histograms of a graph's 2K (JDD) and, at
// tracking level 3, its 3K (wedge/triangle) distributions, together with
// the scalar objectives used by dK-space exploration:
//   S    — likelihood, Σ_edges k_u * k_v              (defined by P2)
//   S2   — second-order likelihood, Σ_wedges k1 * k3  (defined by P∧)
//   C̄    — mean local clustering, (1/n) Σ_v 2 t_v / (k_v (k_v - 1))
//
// The adjacency lives in a flat EdgeIndex (CSR rows + open-addressing
// edge hash) rather than a Graph: DkState either owns one (constructed
// from a Graph) or binds to one owned by a rewiring engine, so a 3K
// rewirer maintains exactly ONE adjacency structure.  Wedge/triangle
// deltas of an edge mutation are computed by a timestamped mark-array
// common-neighbor pass — mark N(v), sweep N(u) — which costs
// O(deg u + deg v) with zero hash probes.
//
// Single edge insertions/removals update everything with node degrees
// *frozen* at construction time: the intended use is degree-preserving
// double-edge swaps, where every intermediate state has the same final
// degree vector.  This freeze is what makes the bookkeeping exact for
// rewiring: histogram keys never shift mid-swap.
//
// A bin listener receives every histogram mutation so callers (targeting
// rewiring) can maintain squared distances D2/D3 incrementally.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/joint_degree_distribution.hpp"
#include "core/three_k_profile.hpp"
#include "graph/edge_index.hpp"
#include "graph/graph.hpp"

namespace orbis::dk {

/// Net wedge/triangle histogram deltas of a short mutation window (one
/// double-edge swap): bins whose net change is zero are dropped, so an
/// in-flight swap is 3K-preserving iff the journal is empty afterwards.
/// Rewiring engines also read the non-zero deltas to evaluate ΔD3
/// incrementally against a target without a per-mutation callback.
/// Stored as a flat vector, not a hash map: a swap touches O(deg) bins,
/// so linear coalescing beats node-allocating containers on the hot
/// path.  JDD deltas are deliberately not journaled: a swap's four JDD
/// bin moves follow in O(1) from the frozen endpoint degrees, so
/// callers that need them compute them directly.
struct DeltaJournal {
  using Entry = std::pair<std::uint64_t, std::int64_t>;
  using Map = std::vector<Entry>;  // tiny; zero-net entries are dropped
  Map wedge;
  Map triangle;

  /// Only meaningful after coalesce(): producers append raw per-event
  /// entries and coalesce once, so filling stays O(1) per event even on
  /// hub endpoints with many distinct neighbor degrees.
  bool all_zero() const noexcept { return wedge.empty() && triangle.empty(); }
  /// Sorts by key, merges duplicates and drops zero-net entries.
  void coalesce();
  void clear() noexcept {
    wedge.clear();
    triangle.clear();
  }
};

/// The full effect of a proposed double-edge swap (a,b),(c,d) ->
/// (a,d),(c,b), computed by DkState::evaluate_swap WITHOUT mutating the
/// state.  Rejecting a proposal costs nothing further; accepting it is
/// DkState::commit_swap.  Reuse one instance across attempts — the
/// buffers keep their capacity.
struct SwapDelta {
  NodeId a = 0, b = 0, c = 0, d = 0;
  DeltaJournal journal;  // net wedge/triangle bin deltas (full_three_k)
  // Per-node triangle-count events (node, ±1), in causal order.
  std::vector<std::pair<NodeId, std::int32_t>> triangle_nodes;
  double s2_delta = 0.0;
  double clustering_delta = 0.0;  // change of Σ_v 2 t_v / (k_v(k_v-1))

  void clear() noexcept {
    journal.clear();
    triangle_nodes.clear();
    s2_delta = 0.0;
    clustering_delta = 0.0;
  }
};

enum class TrackLevel : int {
  jdd_only = 2,        // maintain 2K + S (cheap; for 1K/2K processes)
  three_k_scalars = 3, // + S2, C̄ and per-node triangles, but NOT the
                       //   wedge/triangle histograms (for exploration,
                       //   which only optimizes the scalars)
  full_three_k = 4,    // + the full 3K histograms (for 3K rewiring)
};

enum class BinKind : int { jdd, wedge, triangle };

class DkState {
 public:
  /// Listener invoked as (kind, key, old_count, new_count).
  using BinListener = std::function<void(BinKind, std::uint64_t, std::int64_t,
                                         std::int64_t)>;

  /// Standalone state: builds and owns a flat EdgeIndex for `graph`.
  DkState(const Graph& graph, TrackLevel level);

  /// Shared-adjacency state: binds to an EdgeIndex owned by the caller
  /// (typically a rewiring engine that also samples swap candidates from
  /// it).  add_edge/remove_edge mutate that index directly; the caller
  /// must not mutate it behind DkState's back.  The index must outlive
  /// this object at a stable address, so DkState is intentionally
  /// neither copyable nor movable.
  DkState(EdgeIndex& index, TrackLevel level);

  DkState(const DkState&) = delete;
  DkState& operator=(const DkState&) = delete;

  /// The adjacency backend (shared or owned).
  const EdgeIndex& index() const noexcept { return *index_; }

  /// Exports the current edge set as a Graph (O(n + m) copy).
  Graph to_graph() const { return index_->to_graph(); }

  TrackLevel level() const noexcept { return level_; }

  /// Frozen degree of v (the degree vector captured at construction).
  std::uint32_t frozen_degree(NodeId v) const { return index_->degree(v); }

  /// Removes edge (u,v), updating all histograms/scalars and the index.
  /// Precondition: the edge exists.
  void remove_edge(NodeId u, NodeId v);

  /// Adds edge (u,v), updating all histograms/scalars and the index.
  /// Precondition: the edge does not exist, u != v, and neither endpoint
  /// is at its frozen degree.
  void add_edge(NodeId u, NodeId v);

  /// Per-caller scratch for evaluate_swap: the timestamped mark array of
  /// the common-neighbor passes.  evaluate_swap reads only const state
  /// plus one scratch, so any number of threads may evaluate proposals
  /// concurrently against the SAME DkState as long as each brings its
  /// own scratch (the optimistic batching protocol of docs/parallel.md).
  /// A scratch is bound to one state's node count; reuse it across
  /// evaluations to keep the array warm.
  struct EvalScratch {
    std::vector<std::uint64_t> mark;
    std::uint64_t stamp = 0;
  };

  /// Speculatively evaluates the double-edge swap (a,b),(c,d) ->
  /// (a,d),(c,b): fills `out` with the net wedge/triangle bin deltas
  /// (at full_three_k), the per-node triangle events and the S2/C̄
  /// scalar deltas, WITHOUT touching the histograms or the index.  The
  /// cost is O(deg a + deg b + deg c + deg d) mark-array passes with
  /// zero hash probes, so rejecting the proposal afterwards is free.
  /// Preconditions: 3K tracking is on, both edges exist, the four
  /// endpoints are distinct, and neither replacement edge is present.
  ///
  /// The scratch overload is safe to call from multiple threads
  /// concurrently (distinct scratches, no interleaved mutation); the
  /// two-argument form uses an internal scratch and is single-threaded
  /// like every other member.
  void evaluate_swap(NodeId a, NodeId b, NodeId c, NodeId d,
                     SwapDelta& out) const;
  void evaluate_swap(NodeId a, NodeId b, NodeId c, NodeId d, SwapDelta& out,
                     EvalScratch& scratch) const;

  /// Commits a swap evaluated by evaluate_swap: folds the recorded
  /// deltas into the histograms/scalars and applies the swap to the
  /// index as one O(1) operation.  The swap must preserve the JDD
  /// (deg b = deg d or deg a = deg c, as every 2K-preserving candidate
  /// does), since the four cancelling JDD bin moves are skipped; bin
  /// listeners and the mutation journal do not observe committed swaps.
  void commit_swap(const SwapDelta& delta);

  const JointDegreeDistribution& jdd() const noexcept { return jdd_; }
  const ThreeKProfile& three_k() const noexcept { return three_k_; }

  double likelihood_s() const noexcept { return s_; }
  double second_order_likelihood() const noexcept { return s2_; }
  /// Mean local clustering over all nodes (degree<2 nodes contribute 0).
  double mean_clustering() const noexcept;
  std::int64_t triangles_at(NodeId v) const { return node_triangles_[v]; }

  void set_bin_listener(BinListener listener) {
    listener_ = std::move(listener);
  }
  void clear_bin_listener() { listener_ = nullptr; }

  /// Recomputes everything from scratch and verifies it matches the
  /// incrementally maintained state (test/debug aid). Throws on mismatch.
  void verify_consistency() const;

 private:
  void init(TrackLevel level);
  /// One virtual-graph mark pass of evaluate_swap: the wedge/triangle
  /// effect of removing (removing=true) or adding edge (u,v), with
  /// `skip_u` hidden from u's row and `skip_v` from v's row so the pass
  /// sees the intermediate graph of a half-applied swap.
  void scan_edge_delta(NodeId u, NodeId v, NodeId skip_u, NodeId skip_v,
                       bool removing, SwapDelta& out,
                       EvalScratch& scratch) const;
  void bump_jdd(std::uint32_t k1, std::uint32_t k2, std::int64_t delta);
  void bump_wedge(std::uint32_t end1, std::uint32_t center,
                  std::uint32_t end2, std::int64_t delta);
  void bump_triangle(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                     std::int64_t delta);
  void bump_node_triangles(NodeId v, std::int64_t delta);

  bool tracks_three_k() const noexcept {
    return level_ != TrackLevel::jdd_only;
  }
  bool tracks_histograms() const noexcept {
    return level_ == TrackLevel::full_three_k;
  }

  std::unique_ptr<EdgeIndex> owned_;  // null when bound to a shared index
  EdgeIndex* index_;
  TrackLevel level_;
  JointDegreeDistribution jdd_;
  ThreeKProfile three_k_;
  std::vector<std::int64_t> node_triangles_;  // t_v per node (level 3)
  double s_ = 0.0;
  double s2_ = 0.0;
  double clustering_sum_ = 0.0;               // Σ_v 2 t_v / (k_v(k_v-1))
  BinListener listener_;

  // Timestamped mark array for the common-neighbor delta passes of the
  // MUTATING paths (add_edge/remove_edge/init): a node is "marked" iff
  // mark_[v] carries the current stamp, so clearing between passes is a
  // counter increment, not an O(n) sweep.  Also serves, via scratch_, the
  // internal-scratch evaluate_swap overload; parallel evaluation brings
  // external EvalScratch instances instead and never touches these.
  mutable std::vector<std::uint64_t> mark_;
  mutable std::uint64_t mark_stamp_ = 0;
  mutable EvalScratch scratch_;  // backs the two-argument evaluate_swap
};

}  // namespace orbis::dk
