// Incremental dK bookkeeping — the engine room of every rewiring process.
//
// DkState owns a Graph plus live histograms of its 2K (JDD) and, at
// tracking level 3, its 3K (wedge/triangle) distributions, together with
// the scalar objectives used by dK-space exploration:
//   S    — likelihood, Σ_edges k_u * k_v              (defined by P2)
//   S2   — second-order likelihood, Σ_wedges k1 * k3  (defined by P∧)
//   C̄    — mean local clustering, (1/n) Σ_v 2 t_v / (k_v (k_v - 1))
//
// Single edge insertions/removals update everything in O(deg) with node
// degrees *frozen* at construction time: the intended use is degree-
// preserving double-edge swaps, where every intermediate state has the
// same final degree vector.  This freeze is what makes the bookkeeping
// exact for rewiring: histogram keys never shift mid-swap.
//
// A bin listener receives every histogram mutation so callers (targeting
// rewiring) can maintain squared distances D2/D3 incrementally.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/joint_degree_distribution.hpp"
#include "core/three_k_profile.hpp"
#include "graph/graph.hpp"

namespace orbis::dk {

/// Net wedge/triangle histogram deltas accumulated between
/// journal_begin/journal_end: bins whose net change is zero are dropped,
/// so an in-flight double-edge swap is 3K-preserving iff the journal is
/// empty afterwards.  Rewiring engines also read the non-zero deltas to
/// evaluate ΔD3 incrementally against a target without a per-mutation
/// callback.  JDD deltas are deliberately not journaled: a swap's four
/// JDD bin moves follow in O(1) from the frozen endpoint degrees, so
/// callers that need them compute them directly.
struct DeltaJournal {
  using Map = std::unordered_map<std::uint64_t, std::int64_t>;
  Map wedge;
  Map triangle;

  bool all_zero() const noexcept { return wedge.empty() && triangle.empty(); }
  void clear() noexcept {
    wedge.clear();
    triangle.clear();
  }
};

enum class TrackLevel : int {
  jdd_only = 2,        // maintain 2K + S (cheap; for 1K/2K processes)
  three_k_scalars = 3, // + S2, C̄ and per-node triangles, but NOT the
                       //   wedge/triangle histograms (for exploration,
                       //   which only optimizes the scalars)
  full_three_k = 4,    // + the full 3K histograms (for 3K rewiring)
};

enum class BinKind : int { jdd, wedge, triangle };

class DkState {
 public:
  /// Listener invoked as (kind, key, old_count, new_count).
  using BinListener = std::function<void(BinKind, std::uint64_t, std::int64_t,
                                         std::int64_t)>;

  DkState(Graph graph, TrackLevel level);

  const Graph& graph() const noexcept { return graph_; }
  TrackLevel level() const noexcept { return level_; }

  /// Frozen degree of v (the degree vector captured at construction).
  std::uint32_t frozen_degree(NodeId v) const { return degrees_[v]; }

  /// Removes edge (u,v), updating all histograms/scalars.
  /// Precondition: the edge exists.
  void remove_edge(NodeId u, NodeId v);

  /// Adds edge (u,v), updating all histograms/scalars.
  /// Precondition: the edge does not exist, u != v.
  void add_edge(NodeId u, NodeId v);

  const JointDegreeDistribution& jdd() const noexcept { return jdd_; }
  const ThreeKProfile& three_k() const noexcept { return three_k_; }

  double likelihood_s() const noexcept { return s_; }
  double second_order_likelihood() const noexcept { return s2_; }
  /// Mean local clustering over all nodes (degree<2 nodes contribute 0).
  double mean_clustering() const noexcept;
  std::int64_t triangles_at(NodeId v) const { return node_triangles_[v]; }

  void set_bin_listener(BinListener listener) {
    listener_ = std::move(listener);
  }
  void clear_bin_listener() { listener_ = nullptr; }

  // Delta journal: cheap alternative to a bin listener for code that
  // only needs the net histogram change of a short mutation window
  // (one double-edge swap).  begin clears and arms the journal; end
  // disarms it.  The journal may be read while armed or after end.
  void journal_begin() {
    journal_.clear();
    journaling_ = true;
  }
  void journal_end() { journaling_ = false; }
  const DeltaJournal& journal() const noexcept { return journal_; }

  /// Recomputes everything from scratch and verifies it matches the
  /// incrementally maintained state (test/debug aid). Throws on mismatch.
  void verify_consistency() const;

 private:
  void bump_jdd(std::uint32_t k1, std::uint32_t k2, std::int64_t delta);
  void bump_wedge(std::uint32_t end1, std::uint32_t center,
                  std::uint32_t end2, std::int64_t delta);
  void bump_triangle(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                     std::int64_t delta);
  void bump_node_triangles(NodeId v, std::int64_t delta);

  bool tracks_three_k() const noexcept {
    return level_ != TrackLevel::jdd_only;
  }
  bool tracks_histograms() const noexcept {
    return level_ == TrackLevel::full_three_k;
  }

  Graph graph_;
  TrackLevel level_;
  std::vector<std::uint32_t> degrees_;        // frozen at construction
  JointDegreeDistribution jdd_;
  ThreeKProfile three_k_;
  std::vector<std::int64_t> node_triangles_;  // t_v per node (level 3)
  double s_ = 0.0;
  double s2_ = 0.0;
  double clustering_sum_ = 0.0;               // Σ_v 2 t_v / (k_v(k_v-1))
  BinListener listener_;
  DeltaJournal journal_;
  bool journaling_ = false;
};

}  // namespace orbis::dk
