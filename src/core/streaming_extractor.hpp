// Streaming dK extraction: 1K/2K/3K profiles from an edge stream,
// without ever materializing a Graph.
//
// The in-memory pipeline (io::read_edge_list -> Graph -> dk::extract)
// holds the raw edge list, the dense-id map, the adjacency vectors AND
// the per-edge hash before the first histogram bin is touched — several
// resident copies of the graph.  StreamingDkExtractor instead accumulates
// directly from the stream, in sequential passes:
//
//   pass 0   intern node ids, count degrees (self-loops and — unless
//            assume_simple — duplicate edges are skipped, exactly as the
//            in-memory reader skips them);
//   pass 1   (max_d >= 2) re-stream: fold each kept edge into the JDD
//            using the now-final degrees; at max_d == 3 also fill a
//            compact CSR so the wedge/triangle enumeration can run at
//            end of pass.
//
// Memory is the accumulators, not the stream: O(n) id map + degrees,
// O(occupied bins) histograms, plus the duplicate-detection key set
// (O(m), skipped with assume_simple) and, for max_d == 3 only, the
// O(n + m) CSR that size-3 subgraph counting fundamentally requires.
// At max_d <= 2 with trusted input the footprint is independent of the
// edge count.  See docs/scaling.md for the full memory model; the
// chunked file driver lives in io/chunked_edge_reader.hpp.
//
// The resulting distributions are bin-for-bin equal to dk::extract on
// the Graph the in-memory reader would have produced from the same
// stream (tests/core/test_streaming_extractor.cpp pins this).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/series.hpp"
#include "util/flat_key_set.hpp"

namespace orbis::dk {

struct StreamingOptions {
  /// Trusted simple input (e.g. this library's own writer): skip the
  /// duplicate-edge key set, making the max_d <= 2 footprint independent
  /// of the edge count.  Self-loops are still skipped (the check is
  /// free).  Feeding duplicates with this set silently double-counts —
  /// exactly like Graph::from_edges_unchecked.
  bool assume_simple = false;
};

class StreamingDkExtractor {
 public:
  explicit StreamingDkExtractor(int max_d, StreamingOptions options = {});

  int max_d() const noexcept { return max_d_; }
  /// Sequential scans of the edge stream required: 1 for max_d <= 1,
  /// 2 otherwise (the JDD and 3K accumulators need final degrees).
  int passes_needed() const noexcept { return max_d_ >= 2 ? 2 : 1; }
  int pass() const noexcept { return pass_; }
  bool needs_another_pass() const noexcept {
    return pass_ + 1 < passes_needed();
  }

  /// Feeds the next edge of the current pass.  Every pass must replay
  /// the identical stream (same edges, same order); pass >= 1 throws
  /// std::invalid_argument on an id the first pass never saw.
  void consume(std::uint64_t u, std::uint64_t v);

  /// Ends the current pass; call needs_another_pass() first to know
  /// whether to replay the stream or to finish().
  void end_pass();

  /// Declares the total node count (isolated nodes included), e.g. from
  /// the writer header.  Honored at finish() iff every streamed id is
  /// in [0, n) — the same rule the in-memory reader applies.
  void declare_nodes(std::uint64_t n) { declared_nodes_ = n; }

  /// Final distributions; requires all passes ended.
  DkDistributions finish();

  std::size_t skipped_self_loops() const noexcept { return self_loops_; }
  std::size_t skipped_duplicates() const noexcept { return duplicates_; }

  /// Bytes currently held by the accumulators (id map, degrees,
  /// duplicate set, CSR, histograms) — the streaming memory model's
  /// measurable half; the chunk buffer is the reader's.
  std::size_t accumulator_bytes() const noexcept;

  /// High-water mark of accumulator_bytes(), checkpointed at every
  /// end_pass() and inside finish() after the 3K histograms are built
  /// (they only exist there, so a caller polling accumulator_bytes()
  /// from outside would miss them).  Valid after finish().
  std::size_t peak_accumulator_bytes() const noexcept {
    return peak_accumulator_bytes_;
  }

 private:
  std::uint32_t intern(std::uint64_t file_id);
  void note_footprint() noexcept;
  /// Shared skip logic: false if the edge is a self-loop or (when
  /// detecting) a duplicate.  Both passes make identical decisions
  /// because both run it against an identically replayed stream.
  bool keep_edge(std::uint32_t u, std::uint32_t v);
  void build_csr_offsets();
  void finish_three_k();

  int max_d_;
  StreamingOptions options_;
  int pass_ = 0;
  bool pass_open_ = true;
  std::uint64_t declared_nodes_ = 0;
  std::size_t self_loops_ = 0;
  std::size_t duplicates_ = 0;
  std::size_t kept_edges_ = 0;
  std::size_t peak_accumulator_bytes_ = 0;

  std::unordered_map<std::uint64_t, std::uint32_t> dense_id_;
  std::uint64_t max_file_id_ = 0;
  std::vector<std::uint32_t> degree_;
  util::FlatKeySet seen_edges_;

  // max_d == 3 only: compact CSR filled during pass 1, plus the flat
  // degree-ordered forward orientation (m entries) finish_three_k()
  // builds for triangle enumeration — flat so the 3K peak stays two
  // allocations, and a member so the footprint accounting sees it.
  std::vector<std::uint64_t> csr_offset_;  // n + 1 entries
  std::vector<std::uint32_t> csr_fill_;    // per-node write cursor
  std::vector<std::uint32_t> csr_adj_;     // 2m entries
  std::vector<std::uint64_t> fwd_offset_;  // n + 1 entries
  std::vector<std::uint32_t> fwd_adj_;     // m entries

  DkDistributions result_;
};

}  // namespace orbis::dk
