// Facade over the dK-series: bundled extraction of P0..P3 for a graph and
// the squared-difference distances D_d used by targeting rewiring (§4.1.4).
#pragma once

#include <string>

#include "core/degree_distribution.hpp"
#include "core/joint_degree_distribution.hpp"
#include "core/three_k_profile.hpp"
#include "graph/graph.hpp"

namespace orbis::dk {

/// All dK-distributions of one graph, d = 0..3.
struct DkDistributions {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  double average_degree = 0.0;          // P0
  DegreeDistribution degree;            // P1
  JointDegreeDistribution joint;        // P2
  ThreeKProfile three_k;                // P3
};

/// Extract every dK-distribution up to level `max_d` (0..3); higher levels
/// are left empty. Extraction is pure and does not modify the graph.
DkDistributions extract(const Graph& g, int max_d = 3);

/// D0 = (k̄_a - k̄_b)^2.
double distance_0k(const DkDistributions& a, const DkDistributions& b);

/// D1 = Σ_k (n_a(k) - n_b(k))^2.
double distance_1k(const DegreeDistribution& a, const DegreeDistribution& b);

/// D2 = Σ_{k1,k2} (m_a(k1,k2) - m_b(k1,k2))^2 — the paper's JDD distance.
double distance_2k(const JointDegreeDistribution& a,
                   const JointDegreeDistribution& b);

/// D3 = Σ (wedge diffs)^2 + Σ (triangle diffs)^2.
double distance_3k(const ThreeKProfile& a, const ThreeKProfile& b);

/// Human-readable one-line summary ("n=.. m=.. kbar=.. wedges=..").
std::string describe(const DkDistributions& dists);

}  // namespace orbis::dk
