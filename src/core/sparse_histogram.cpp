#include "core/sparse_histogram.hpp"

namespace orbis::dk {

void SparseHistogram::grow() {
  // Load factor <= 0.5 after every growth step keeps linear-probe chains
  // short on the commit/price hot paths.
  const std::size_t capacity = counts_.empty() ? 16 : counts_.size() * 2;
  std::vector<std::uint64_t> old_keys = std::move(keys_);
  std::vector<std::int64_t> old_counts = std::move(counts_);
  keys_.assign(capacity, 0);
  counts_.assign(capacity, 0);
  mask_ = capacity - 1;
  for (std::size_t slot = 0; slot < old_counts.size(); ++slot) {
    if (old_counts[slot] == 0) continue;
    std::size_t i = index_of(old_keys[slot]);
    while (counts_[i] != 0) i = (i + 1) & mask_;
    keys_[i] = old_keys[slot];
    counts_[i] = old_counts[slot];
  }
}

void SparseHistogram::add(std::uint64_t key, std::int64_t delta) {
  if (delta == 0) return;
  if (counts_.empty()) grow();

  std::size_t i = index_of(key);
  while (counts_[i] != 0) {
    if (keys_[i] == key) {
      const std::int64_t next = counts_[i] + delta;
      util::ensures(next >= 0, "SparseHistogram: bin went negative");
      if (next != 0) {
        counts_[i] = next;
        return;
      }
      // Backward-shift deletion: pull later chain members into the hole
      // so probe sequences stay gap-free without tombstones.
      std::size_t hole = i;
      std::size_t probe = i;
      while (true) {
        probe = (probe + 1) & mask_;
        if (counts_[probe] == 0) break;
        const std::size_t ideal = index_of(keys_[probe]);
        // The element at `probe` may fill the hole iff its ideal
        // position is cyclically outside (hole, probe].
        if (((probe - ideal) & mask_) >= ((probe - hole) & mask_)) {
          keys_[hole] = keys_[probe];
          counts_[hole] = counts_[probe];
          hole = probe;
        }
      }
      counts_[hole] = 0;
      --num_bins_;
      return;
    }
    i = (i + 1) & mask_;
  }

  // New bin; creating it with a negative count is the caller error the
  // signed representation exists to catch.
  util::ensures(delta >= 0, "SparseHistogram: bin went negative");
  keys_[i] = key;
  counts_[i] = delta;
  ++num_bins_;
  if (2 * (num_bins_ + 1) > counts_.size()) grow();
}

void SparseHistogram::clear() noexcept {
  keys_.clear();
  counts_.clear();
  mask_ = 0;
  num_bins_ = 0;
}

bool operator==(const SparseHistogram& a, const SparseHistogram& b) {
  if (a.num_bins_ != b.num_bins_) return false;
  for (const auto& [key, count] : a.bins()) {
    if (b.count(key) != count) return false;
  }
  return true;
}

double SparseHistogram::squared_difference(const SparseHistogram& a,
                                           const SparseHistogram& b) {
  double total = 0.0;
  for (const auto& [key, value] : a.bins()) {
    const double diff = static_cast<double>(value - b.count(key));
    total += diff * diff;
  }
  for (const auto& [key, value] : b.bins()) {
    if (a.count(key) == 0) {
      const double diff = static_cast<double>(value);
      total += diff * diff;
    }
  }
  return total;
}

}  // namespace orbis::dk
