#include "core/sparse_histogram.hpp"

namespace orbis::dk {

double SparseHistogram::squared_difference(const SparseHistogram& a,
                                           const SparseHistogram& b) {
  double total = 0.0;
  for (const auto& [key, value] : a.bins_) {
    const double diff = static_cast<double>(value - b.count(key));
    total += diff * diff;
  }
  for (const auto& [key, value] : b.bins_) {
    if (a.bins_.count(key) == 0) {
      const double diff = static_cast<double>(value);
      total += diff * diff;
    }
  }
  return total;
}

}  // namespace orbis::dk
