#include "core/sparse_histogram.hpp"

namespace orbis::dk {

void SparseHistogram::add(std::uint64_t key, std::int64_t delta) {
  if (delta == 0) return;
  if (!table_.has_storage()) table_.grow();

  const std::size_t i = table_.locate(key);
  if (table_.occupied(i)) {
    const std::int64_t next = table_.payload_at(i) + delta;
    util::ensures(next >= 0, "SparseHistogram: bin went negative");
    if (next != 0) {
      table_.payload_at(i) = next;
      return;
    }
    table_.erase_at(i);
    return;
  }

  // New bin; creating it with a negative count is the caller error the
  // signed representation exists to catch.  Nothing is mutated before
  // the check, so a failed add leaves the histogram untouched.
  util::ensures(delta >= 0, "SparseHistogram: bin went negative");
  table_.occupy(i, key, delta);
  // Growth AFTER the insertion (load factor <= 0.5 keeps linear-probe
  // chains short on the commit/price hot paths) — this table's
  // historical timing, which pins its slot layout and bins() order.
  if (table_.over_load_factor()) table_.grow();
}

bool operator==(const SparseHistogram& a, const SparseHistogram& b) {
  if (a.num_bins() != b.num_bins()) return false;
  for (const auto& [key, count] : a.bins()) {
    if (b.count(key) != count) return false;
  }
  return true;
}

double SparseHistogram::squared_difference(const SparseHistogram& a,
                                           const SparseHistogram& b) {
  double total = 0.0;
  for (const auto& [key, value] : a.bins()) {
    const double diff = static_cast<double>(value - b.count(key));
    total += diff * diff;
  }
  for (const auto& [key, value] : b.bins()) {
    if (a.count(key) == 0) {
      const double diff = static_cast<double>(value);
      total += diff * diff;
    }
  }
  return total;
}

}  // namespace orbis::dk
