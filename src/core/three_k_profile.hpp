// The 3K-distribution: degree correlations within connected subgraphs of
// size 3.  Two components (paper §3):
//
//   wedges    P∧(k1,k2,k3) — 2-paths k1 - k2 - k3 whose endpoints are NOT
//             adjacent (the center degree is k2; endpoints unordered),
//   triangles P△(k1,k2,k3) — 3-cliques (fully unordered).
//
// Stored as raw subgraph counts (the paper's own example counts subgraphs,
// not probabilities).  With this "induced" wedge definition every
// (edge, side, extra-neighbor) incidence is exactly one wedge or one
// triangle, which yields the paper's inclusion identity
//   m(k1,k2) ~ Σ_k [N∧(k,k1,k2) + N△(k,k1,k2)] / (k1 - 1),
// implemented here as project_to_2k().
#pragma once

#include <cstdint>
#include <vector>

#include "core/joint_degree_distribution.hpp"
#include "core/sparse_histogram.hpp"
#include "graph/graph.hpp"
#include "util/keys.hpp"

namespace orbis::dk {

class ThreeKProfile {
 public:
  ThreeKProfile() = default;

  /// Fast extraction: O(Σ_v deg(v) log deg(v) + m^{3/2}).
  static ThreeKProfile from_graph(const Graph& g);

  /// Reference extraction by direct neighbor-pair enumeration:
  /// O(Σ_v deg(v)^2). Used to validate the fast path in tests.
  static ThreeKProfile from_graph_naive(const Graph& g);

  std::int64_t wedge_count(std::size_t end1, std::size_t center,
                           std::size_t end2) const {
    return wedges_.count(util::wedge_key(static_cast<std::uint32_t>(end1),
                                         static_cast<std::uint32_t>(center),
                                         static_cast<std::uint32_t>(end2)));
  }

  std::int64_t triangle_count(std::size_t a, std::size_t b,
                              std::size_t c) const {
    return triangles_.count(util::triangle_key(static_cast<std::uint32_t>(a),
                                               static_cast<std::uint32_t>(b),
                                               static_cast<std::uint32_t>(c)));
  }

  std::int64_t total_wedges() const noexcept { return wedges_.total(); }
  std::int64_t total_triangles() const noexcept { return triangles_.total(); }

  const SparseHistogram& wedges() const noexcept { return wedges_; }
  const SparseHistogram& triangles() const noexcept { return triangles_; }
  SparseHistogram& wedges() noexcept { return wedges_; }
  SparseHistogram& triangles() noexcept { return triangles_; }

  /// Second-order likelihood S2 = Σ_wedges k1*k3 (paper §4.3): the scalar
  /// summary of the wedge component.
  double second_order_likelihood() const;

  /// Σ_triangles contribution used by the paper's C̄ ~ Σ k1 P△ remark.
  double triangle_degree_sum() const;

  /// Inclusion projection P3 -> P2.  Recovers m(k1,k2) for every pair
  /// with max(k1,k2) >= 2; isolated (1,1)-edges are invisible to size-3
  /// subgraphs and are assumed absent (throws if inputs are inconsistent).
  JointDegreeDistribution project_to_2k() const;

  friend bool operator==(const ThreeKProfile& a, const ThreeKProfile& b) {
    return a.wedges_ == b.wedges_ && a.triangles_ == b.triangles_;
  }

 private:
  SparseHistogram wedges_;
  SparseHistogram triangles_;
};

}  // namespace orbis::dk
