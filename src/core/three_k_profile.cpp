#include "core/three_k_profile.hpp"

#include <algorithm>
#include <map>

namespace orbis::dk {

namespace {

using DegreeOf = std::vector<std::uint32_t>;

DegreeOf degrees_of(const Graph& g) {
  DegreeOf degrees(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    degrees[v] = static_cast<std::uint32_t>(g.degree(v));
  }
  return degrees;
}

/// Adds to `wedges` the count of ALL neighbor pairs at every center
/// (adjacent or not); the caller subtracts triangle-closed pairs.
void accumulate_center_pairs(const Graph& g, const DegreeOf& degrees,
                             SparseHistogram& wedges) {
  std::vector<std::uint32_t> neighbor_degrees;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    if (nbrs.size() < 2) continue;
    neighbor_degrees.clear();
    neighbor_degrees.reserve(nbrs.size());
    for (const NodeId w : nbrs) neighbor_degrees.push_back(degrees[w]);
    std::sort(neighbor_degrees.begin(), neighbor_degrees.end());

    // Run-length encode, then add pair counts class by class.
    std::vector<std::pair<std::uint32_t, std::int64_t>> runs;
    for (std::size_t i = 0; i < neighbor_degrees.size();) {
      std::size_t j = i;
      while (j < neighbor_degrees.size() &&
             neighbor_degrees[j] == neighbor_degrees[i]) {
        ++j;
      }
      runs.emplace_back(neighbor_degrees[i],
                        static_cast<std::int64_t>(j - i));
      i = j;
    }
    for (std::size_t a = 0; a < runs.size(); ++a) {
      const auto [da, ca] = runs[a];
      if (ca >= 2) {
        wedges.add(util::wedge_key(da, degrees[v], da), ca * (ca - 1) / 2);
      }
      for (std::size_t b = a + 1; b < runs.size(); ++b) {
        const auto [db, cb] = runs[b];
        wedges.add(util::wedge_key(da, degrees[v], db), ca * cb);
      }
    }
  }
}

/// Enumerates each triangle exactly once via degree-ordered orientation
/// (classic forward-adjacency method, O(m^{3/2})).
template <typename Visit>
void for_each_triangle(const Graph& g, const DegreeOf& degrees, Visit visit) {
  const auto precedes = [&](NodeId a, NodeId b) {
    return std::pair(degrees[a], a) < std::pair(degrees[b], b);
  };
  std::vector<std::vector<NodeId>> forward(g.num_nodes());
  for (const auto& e : g.edges()) {
    if (precedes(e.u, e.v)) {
      forward[e.u].push_back(e.v);
    } else {
      forward[e.v].push_back(e.u);
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto& fwd = forward[u];
    for (std::size_t i = 0; i < fwd.size(); ++i) {
      for (std::size_t j = i + 1; j < fwd.size(); ++j) {
        if (g.has_edge(fwd[i], fwd[j])) visit(u, fwd[i], fwd[j]);
      }
    }
  }
}

}  // namespace

ThreeKProfile ThreeKProfile::from_graph(const Graph& g) {
  ThreeKProfile profile;
  const DegreeOf degrees = degrees_of(g);

  accumulate_center_pairs(g, degrees, profile.wedges_);

  for_each_triangle(g, degrees, [&](NodeId a, NodeId b, NodeId c) {
    const auto da = degrees[a];
    const auto db = degrees[b];
    const auto dc = degrees[c];
    profile.triangles_.increment(util::triangle_key(da, db, dc));
    // The three closed neighbor pairs are not wedges: subtract them.
    profile.wedges_.decrement(util::wedge_key(db, da, dc));  // center a
    profile.wedges_.decrement(util::wedge_key(da, db, dc));  // center b
    profile.wedges_.decrement(util::wedge_key(da, dc, db));  // center c
  });

  return profile;
}

ThreeKProfile ThreeKProfile::from_graph_naive(const Graph& g) {
  ThreeKProfile profile;
  const DegreeOf degrees = degrees_of(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const NodeId a = nbrs[i];
        const NodeId b = nbrs[j];
        if (g.has_edge(a, b)) {
          // Count each triangle once: at its minimum-id vertex.
          if (v < a && v < b) {
            profile.triangles_.increment(
                util::triangle_key(degrees[v], degrees[a], degrees[b]));
          }
        } else {
          profile.wedges_.increment(
              util::wedge_key(degrees[a], degrees[v], degrees[b]));
        }
      }
    }
  }
  return profile;
}

double ThreeKProfile::second_order_likelihood() const {
  double total = 0.0;
  for (const auto& [key, count] : wedges_.bins()) {
    const auto [end1, center, end2] = util::unpack_triple(key);
    (void)center;
    total += static_cast<double>(count) * static_cast<double>(end1) *
             static_cast<double>(end2);
  }
  return total;
}

double ThreeKProfile::triangle_degree_sum() const {
  double total = 0.0;
  for (const auto& [key, count] : triangles_.bins()) {
    const auto [a, b, c] = util::unpack_triple(key);
    total += static_cast<double>(count) *
             static_cast<double>(a + b + c);
  }
  return total;
}

JointDegreeDistribution ThreeKProfile::project_to_2k() const {
  // incidence[(kc, ke)] = number of ordered (edge-side, extra neighbor)
  // configurations whose center (side vertex) has degree kc and whose edge
  // partner has degree ke.  Every such configuration is exactly one wedge
  // or one triangle.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::int64_t> incidence;

  for (const auto& [key, count] : wedges_.bins()) {
    const auto [end1, center, end2] = util::unpack_triple(key);
    // Wedge e1 - c - e2 contains edges (c,e1) and (c,e2); the extra
    // neighbor of side c is the opposite end in each case.
    incidence[{center, end1}] += count;
    incidence[{center, end2}] += count;
  }
  for (const auto& [key, count] : triangles_.bins()) {
    const auto [a, b, c] = util::unpack_triple(key);
    const std::uint32_t deg[3] = {a, b, c};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        if (i != j) incidence[{deg[i], deg[j]}] += count;
      }
    }
  }

  // m(k1,k2) = incidence[(k1,k2)] / (k1-1), doubled denominator when
  // k1 == k2 (both sides of the edge contribute).
  JointDegreeDistribution jdd;
  std::map<std::uint64_t, std::int64_t> recovered;
  for (const auto& [pair, configurations] : incidence) {
    const auto [kc, ke] = pair;
    if (kc < 2) continue;  // degree-1 side contributes no configurations
    const std::int64_t denominator =
        (kc == ke) ? 2 * static_cast<std::int64_t>(kc - 1)
                   : static_cast<std::int64_t>(kc - 1);
    util::ensures(configurations % denominator == 0,
                  "3K projection: inconsistent incidence counts");
    const std::int64_t m = configurations / denominator;
    const std::uint64_t key = util::pair_key(kc, ke);
    const auto it = recovered.find(key);
    if (it == recovered.end()) {
      recovered.emplace(key, m);
    } else {
      util::ensures(it->second == m,
                    "3K projection: the two edge sides disagree");
    }
  }
  // NOTE: the result excludes (1,1)-edges, invisible at d=3.
  for (const auto& [key, m] : recovered) jdd.histogram().add(key, m);
  return jdd;
}

}  // namespace orbis::dk
