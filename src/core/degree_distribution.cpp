#include "core/degree_distribution.hpp"

#include <algorithm>

namespace orbis::dk {

DegreeDistribution DegreeDistribution::from_graph(const Graph& g) {
  return from_sequence(g.degree_sequence());
}

DegreeDistribution DegreeDistribution::from_sequence(
    const std::vector<std::size_t>& degrees) {
  DegreeDistribution dist;
  std::size_t max_degree = 0;
  for (const auto d : degrees) max_degree = std::max(max_degree, d);
  dist.counts_.assign(max_degree + 1, 0);
  for (const auto d : degrees) ++dist.counts_[d];
  dist.total_nodes_ = degrees.size();
  if (degrees.empty()) dist.counts_.clear();
  return dist;
}

double DegreeDistribution::p_of_k(std::size_t k) const noexcept {
  if (total_nodes_ == 0) return 0.0;
  return static_cast<double>(n_of_k(k)) / static_cast<double>(total_nodes_);
}

double DegreeDistribution::average_degree() const noexcept {
  if (total_nodes_ == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    sum += static_cast<double>(k) * static_cast<double>(counts_[k]);
  }
  return sum / static_cast<double>(total_nodes_);
}

double DegreeDistribution::mean_excess_degree() const noexcept {
  double k1 = 0.0;  // Σ k n(k)
  double k2 = 0.0;  // Σ k(k-1) n(k)
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    const auto nk = static_cast<double>(counts_[k]);
    k1 += static_cast<double>(k) * nk;
    k2 += static_cast<double>(k) * static_cast<double>(k - 1) * nk;
  }
  return k1 > 0.0 ? k2 / k1 : 0.0;
}

std::vector<std::size_t> DegreeDistribution::to_sequence() const {
  std::vector<std::size_t> sequence;
  sequence.reserve(total_nodes_);
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    sequence.insert(sequence.end(), counts_[k], k);
  }
  return sequence;
}

std::vector<std::size_t> DegreeDistribution::support() const {
  std::vector<std::size_t> degrees;
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    if (counts_[k] > 0) degrees.push_back(k);
  }
  return degrees;
}

}  // namespace orbis::dk
