// The 1K-distribution: node degree distribution P(k) = n(k)/n.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace orbis::dk {

class DegreeDistribution {
 public:
  DegreeDistribution() = default;

  static DegreeDistribution from_graph(const Graph& g);
  static DegreeDistribution from_sequence(
      const std::vector<std::size_t>& degrees);

  /// Number of nodes with degree k (0 for k beyond the observed maximum).
  std::uint64_t n_of_k(std::size_t k) const noexcept {
    return k < counts_.size() ? counts_[k] : 0;
  }

  /// P(k) = n(k)/n; 0 for the empty distribution.
  double p_of_k(std::size_t k) const noexcept;

  std::uint64_t num_nodes() const noexcept { return total_nodes_; }
  std::size_t max_degree() const noexcept {
    return counts_.empty() ? 0 : counts_.size() - 1;
  }

  /// k̄ = Σ k P(k) — the paper's inclusion projection P1 -> P0.
  double average_degree() const noexcept;

  /// Σ k(k-1) P(k) / k̄ — mean excess degree (used by maximum-entropy
  /// predictions of 1K-random graphs).
  double mean_excess_degree() const noexcept;

  /// Expand back into a degree sequence, ascending.
  std::vector<std::size_t> to_sequence() const;

  /// Degrees with non-zero counts, ascending.
  std::vector<std::size_t> support() const;

  friend bool operator==(const DegreeDistribution&,
                         const DegreeDistribution&) = default;

 private:
  std::vector<std::uint64_t> counts_;  // counts_[k] = n(k)
  std::uint64_t total_nodes_ = 0;
};

}  // namespace orbis::dk
