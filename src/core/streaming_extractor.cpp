#include "core/streaming_extractor.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/keys.hpp"

namespace orbis::dk {

StreamingDkExtractor::StreamingDkExtractor(int max_d,
                                           StreamingOptions options)
    : max_d_(max_d), options_(options) {
  util::expects(max_d >= 0 && max_d <= 3,
                "StreamingDkExtractor: max_d must be in [0,3]");
}

std::uint32_t StreamingDkExtractor::intern(std::uint64_t file_id) {
  if (file_id > max_file_id_) max_file_id_ = file_id;
  const auto [it, inserted] = dense_id_.try_emplace(
      file_id, static_cast<std::uint32_t>(dense_id_.size()));
  if (inserted) {
    util::expects(dense_id_.size() <= 0xffffffffull,
                  "StreamingDkExtractor: more than 2^32 distinct node ids");
    degree_.push_back(0);
  }
  return it->second;
}

bool StreamingDkExtractor::keep_edge(std::uint32_t u, std::uint32_t v) {
  if (u == v) {
    if (pass_ == 0) ++self_loops_;
    return false;
  }
  if (!options_.assume_simple &&
      !seen_edges_.insert(util::pair_key(u, v))) {
    if (pass_ == 0) ++duplicates_;
    return false;
  }
  return true;
}

void StreamingDkExtractor::consume(std::uint64_t u, std::uint64_t v) {
  util::expects(pass_open_, "StreamingDkExtractor: pass already ended");
  if (pass_ == 0) {
    const std::uint32_t du = intern(u);
    const std::uint32_t dv = intern(v);
    if (!keep_edge(du, dv)) return;
    ++degree_[du];
    ++degree_[dv];
    ++kept_edges_;
    return;
  }

  // Replay pass: degrees are final, fold the stream into the
  // accumulators.  The skip decisions repeat exactly (same stream, same
  // cleared duplicate set), so the kept edge set is pass-invariant.
  const auto u_it = dense_id_.find(u);
  const auto v_it = dense_id_.find(v);
  util::expects(u_it != dense_id_.end() && v_it != dense_id_.end(),
                "StreamingDkExtractor: replay pass saw a new node id "
                "(the stream must be identical across passes)");
  const std::uint32_t du = u_it->second;
  const std::uint32_t dv = v_it->second;
  if (!keep_edge(du, dv)) return;

  result_.joint.histogram().increment(
      util::pair_key(degree_[du], degree_[dv]));
  if (max_d_ >= 3) {
    csr_adj_[csr_offset_[du] + csr_fill_[du]++] = dv;
    csr_adj_[csr_offset_[dv] + csr_fill_[dv]++] = du;
  }
}

void StreamingDkExtractor::build_csr_offsets() {
  const std::size_t n = degree_.size();
  csr_offset_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    csr_offset_[v + 1] = csr_offset_[v] + degree_[v];
  }
  csr_fill_.assign(n, 0);
  csr_adj_.assign(csr_offset_[n], 0);
}

void StreamingDkExtractor::note_footprint() noexcept {
  const std::size_t bytes = accumulator_bytes();
  if (bytes > peak_accumulator_bytes_) peak_accumulator_bytes_ = bytes;
}

void StreamingDkExtractor::end_pass() {
  util::expects(pass_open_, "StreamingDkExtractor: pass already ended");
  note_footprint();  // accumulators only grow within a pass
  if (needs_another_pass()) {
    seen_edges_.clear();
    if (max_d_ >= 3) build_csr_offsets();
    ++pass_;
    return;
  }
  pass_open_ = false;
}

void StreamingDkExtractor::finish_three_k() {
  const std::size_t n = degree_.size();
  // Sorted rows give O(log deg) edge-existence probes for the triangle
  // closure test below.
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(csr_adj_.begin() + static_cast<std::ptrdiff_t>(csr_offset_[v]),
              csr_adj_.begin() +
                  static_cast<std::ptrdiff_t>(csr_offset_[v + 1]));
  }
  const auto row_begin = [&](std::uint32_t v) {
    return csr_adj_.begin() + static_cast<std::ptrdiff_t>(csr_offset_[v]);
  };
  const auto row_end = [&](std::uint32_t v) {
    return csr_adj_.begin() + static_cast<std::ptrdiff_t>(csr_offset_[v + 1]);
  };
  const auto has_edge = [&](std::uint32_t a, std::uint32_t b) {
    return std::binary_search(row_begin(a), row_end(a), b);
  };

  // Wedges: all neighbor pairs at every center (run-length encoded by
  // neighbor degree), then triangle-closed pairs subtracted — the same
  // two-phase counting as ThreeKProfile::from_graph, so the histograms
  // agree bin for bin.
  SparseHistogram& wedges = result_.three_k.wedges();
  std::vector<std::uint32_t> neighbor_degrees;
  std::vector<std::pair<std::uint32_t, std::int64_t>> runs;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t deg = degree_[v];
    if (deg < 2) continue;
    neighbor_degrees.clear();
    for (auto it = row_begin(static_cast<std::uint32_t>(v));
         it != row_end(static_cast<std::uint32_t>(v)); ++it) {
      neighbor_degrees.push_back(degree_[*it]);
    }
    std::sort(neighbor_degrees.begin(), neighbor_degrees.end());
    runs.clear();
    for (std::size_t i = 0; i < neighbor_degrees.size();) {
      std::size_t j = i;
      while (j < neighbor_degrees.size() &&
             neighbor_degrees[j] == neighbor_degrees[i]) {
        ++j;
      }
      runs.emplace_back(neighbor_degrees[i], static_cast<std::int64_t>(j - i));
      i = j;
    }
    for (std::size_t a = 0; a < runs.size(); ++a) {
      const auto [da, ca] = runs[a];
      if (ca >= 2) {
        wedges.add(util::wedge_key(da, degree_[v], da), ca * (ca - 1) / 2);
      }
      for (std::size_t b = a + 1; b < runs.size(); ++b) {
        const auto [db, cb] = runs[b];
        wedges.add(util::wedge_key(da, degree_[v], db), ca * cb);
      }
    }
  }

  // Triangles: degree-ordered forward orientation enumerates each exactly
  // once in O(m^{3/2}) closure probes.  The orientation is a second flat
  // CSR (two allocations, m entries) rather than per-node vectors: at a
  // million nodes the vector headers alone would rival the payload.
  const auto precedes = [&](std::uint32_t a, std::uint32_t b) {
    return std::pair(degree_[a], a) < std::pair(degree_[b], b);
  };
  fwd_offset_.assign(n + 1, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (auto it = row_begin(u); it != row_end(u); ++it) {
      if (u < *it) ++fwd_offset_[(precedes(u, *it) ? u : *it) + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) fwd_offset_[v + 1] += fwd_offset_[v];
  fwd_adj_.assign(kept_edges_, 0);
  csr_fill_.assign(n, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (auto it = row_begin(u); it != row_end(u); ++it) {
      const std::uint32_t w = *it;
      if (u >= w) continue;
      const std::uint32_t anchor = precedes(u, w) ? u : w;
      const std::uint32_t other = anchor == u ? w : u;
      fwd_adj_[fwd_offset_[anchor] + csr_fill_[anchor]++] = other;
    }
  }
  note_footprint();  // CSR + forward orientation: the 3K memory peak

  SparseHistogram& triangles = result_.three_k.triangles();
  for (std::uint32_t u = 0; u < n; ++u) {
    const std::uint32_t* fwd = fwd_adj_.data() + fwd_offset_[u];
    const std::size_t count = fwd_offset_[u + 1] - fwd_offset_[u];
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t j = i + 1; j < count; ++j) {
        if (!has_edge(fwd[i], fwd[j])) continue;
        const std::uint32_t da = degree_[u];
        const std::uint32_t db = degree_[fwd[i]];
        const std::uint32_t dc = degree_[fwd[j]];
        triangles.increment(util::triangle_key(da, db, dc));
        wedges.decrement(util::wedge_key(db, da, dc));
        wedges.decrement(util::wedge_key(da, db, dc));
        wedges.decrement(util::wedge_key(da, dc, db));
      }
    }
  }
}

DkDistributions StreamingDkExtractor::finish() {
  util::expects(!pass_open_ || !needs_another_pass(),
                "StreamingDkExtractor: finish() before the final pass");
  util::expects(!pass_open_,
                "StreamingDkExtractor: end_pass() the final pass first");

  // The in-memory reader's rule: the declared node count (isolated nodes
  // included) is honored iff every streamed id is in range.
  std::uint64_t n = dense_id_.size();
  if (declared_nodes_ > 0 && declared_nodes_ >= n &&
      (dense_id_.empty() || max_file_id_ < declared_nodes_)) {
    n = declared_nodes_;
  }
  result_.num_nodes = n;
  result_.num_edges = kept_edges_;
  result_.average_degree =
      n > 0 ? 2.0 * static_cast<double>(kept_edges_) /
                  static_cast<double>(n)
            : 0.0;

  if (max_d_ >= 1) {
    std::vector<std::size_t> degrees(degree_.begin(), degree_.end());
    degrees.resize(static_cast<std::size_t>(n), 0);  // isolated nodes
    result_.degree = DegreeDistribution::from_sequence(degrees);
  }
  if (max_d_ >= 3) finish_three_k();
  // The wedge/triangle histograms exist only from here to the move, so
  // the peak must be checkpointed now, not by the caller afterwards.
  note_footprint();
  return std::move(result_);
}

std::size_t StreamingDkExtractor::accumulator_bytes() const noexcept {
  // unordered_map nodes: key + value + bucket pointer + chain pointer,
  // approximated at 48 bytes/entry on a 64-bit libstdc++.
  std::size_t bytes = dense_id_.size() * 48;
  bytes += degree_.capacity() * sizeof(std::uint32_t);
  bytes += seen_edges_.capacity_bytes();
  bytes += csr_offset_.capacity() * sizeof(std::uint64_t);
  bytes += csr_fill_.capacity() * sizeof(std::uint32_t);
  bytes += csr_adj_.capacity() * sizeof(std::uint32_t);
  bytes += fwd_offset_.capacity() * sizeof(std::uint64_t);
  bytes += fwd_adj_.capacity() * sizeof(std::uint32_t);
  bytes += result_.joint.histogram().capacity_bytes();
  bytes += result_.three_k.wedges().capacity_bytes();
  bytes += result_.three_k.triangles().capacity_bytes();
  return bytes;
}

}  // namespace orbis::dk
