#include "core/series.hpp"

#include <sstream>

#include "util/check.hpp"

namespace orbis::dk {

DkDistributions extract(const Graph& g, int max_d) {
  util::expects(max_d >= 0 && max_d <= 3, "extract: max_d must be in [0,3]");
  DkDistributions dists;
  dists.num_nodes = g.num_nodes();
  dists.num_edges = g.num_edges();
  dists.average_degree = g.average_degree();
  if (max_d >= 1) dists.degree = DegreeDistribution::from_graph(g);
  if (max_d >= 2) dists.joint = JointDegreeDistribution::from_graph(g);
  if (max_d >= 3) dists.three_k = ThreeKProfile::from_graph(g);
  return dists;
}

double distance_0k(const DkDistributions& a, const DkDistributions& b) {
  const double diff = a.average_degree - b.average_degree;
  return diff * diff;
}

double distance_1k(const DegreeDistribution& a, const DegreeDistribution& b) {
  const std::size_t kmax = std::max(a.max_degree(), b.max_degree());
  double total = 0.0;
  for (std::size_t k = 0; k <= kmax; ++k) {
    const double diff = static_cast<double>(a.n_of_k(k)) -
                        static_cast<double>(b.n_of_k(k));
    total += diff * diff;
  }
  return total;
}

double distance_2k(const JointDegreeDistribution& a,
                   const JointDegreeDistribution& b) {
  return SparseHistogram::squared_difference(a.histogram(), b.histogram());
}

double distance_3k(const ThreeKProfile& a, const ThreeKProfile& b) {
  return SparseHistogram::squared_difference(a.wedges(), b.wedges()) +
         SparseHistogram::squared_difference(a.triangles(), b.triangles());
}

std::string describe(const DkDistributions& dists) {
  std::ostringstream out;
  out << "n=" << dists.num_nodes << " m=" << dists.num_edges
      << " kbar=" << dists.average_degree
      << " kmax=" << dists.degree.max_degree()
      << " jdd_bins=" << dists.joint.histogram().num_bins()
      << " wedges=" << dists.three_k.total_wedges()
      << " triangles=" << dists.three_k.total_triangles();
  return out.str();
}

}  // namespace orbis::dk
