// The 2K-distribution: joint degree distribution (JDD).
//
// Stored as raw counts m(k1,k2) = number of edges between k1- and
// k2-degree nodes, with unordered canonical keys (each edge counted
// once).  The paper's probability form is
//   P(k1,k2) = m(k1,k2) * mu(k1,k2) / (2m),  mu = 2 if k1==k2 else 1.
#pragma once

#include <cstdint>
#include <vector>

#include "core/degree_distribution.hpp"
#include "core/sparse_histogram.hpp"
#include "graph/graph.hpp"
#include "util/keys.hpp"

namespace orbis::dk {

class JointDegreeDistribution {
 public:
  JointDegreeDistribution() = default;

  static JointDegreeDistribution from_graph(const Graph& g);

  /// m(k1,k2): number of edges joining a k1- and a k2-degree node.
  std::int64_t m_of(std::size_t k1, std::size_t k2) const {
    return counts_.count(util::pair_key(static_cast<std::uint32_t>(k1),
                                        static_cast<std::uint32_t>(k2)));
  }

  /// P(k1,k2) with the paper's mu normalization; symmetric in (k1,k2).
  double p_of(std::size_t k1, std::size_t k2) const;

  /// Total edge count Σ m(k1,k2) (derived, so it stays consistent under
  /// incremental histogram mutation).
  std::int64_t num_edges() const noexcept { return counts_.total(); }

  /// Number of edge endpoints attached to degree-k nodes = k * n(k).
  std::int64_t endpoints_of_degree(std::size_t k) const;

  /// Inclusion projection P2 -> P1 (paper Table 1): recovers n(k) for all
  /// k >= 1.  Degree-0 nodes are invisible to the JDD.
  DegreeDistribution project_to_1k() const;

  const SparseHistogram& histogram() const noexcept { return counts_; }
  SparseHistogram& histogram() noexcept { return counts_; }

  /// Non-zero (k1,k2) bins, k1 <= k2.
  struct Entry {
    std::size_t k1;
    std::size_t k2;
    std::int64_t count;
  };
  std::vector<Entry> entries() const;

  friend bool operator==(const JointDegreeDistribution& a,
                         const JointDegreeDistribution& b) {
    return a.counts_ == b.counts_;
  }

 private:
  SparseHistogram counts_;
};

}  // namespace orbis::dk
