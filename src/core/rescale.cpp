#include "core/rescale.hpp"

#include <cmath>
#include <map>

#include "util/check.hpp"
#include "util/keys.hpp"

namespace orbis::dk {

DegreeDistribution rescale_1k(const DegreeDistribution& source,
                              std::uint64_t target_nodes) {
  util::expects(source.num_nodes() > 0, "rescale_1k: empty source");
  util::expects(target_nodes > 0, "rescale_1k: target_nodes must be > 0");

  // Inverse-CDF resampling at target_nodes quantile midpoints.
  const auto support = source.support();
  util::expects(!support.empty(), "rescale_1k: source has no degrees");
  std::vector<std::uint64_t> cumulative(support.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < support.size(); ++i) {
    running += source.n_of_k(support[i]);
    cumulative[i] = running;
  }
  const double total = static_cast<double>(running);

  std::vector<std::size_t> degrees(target_nodes);
  std::size_t cursor = 0;
  for (std::uint64_t i = 0; i < target_nodes; ++i) {
    const double quantile = (static_cast<double>(i) + 0.5) /
                            static_cast<double>(target_nodes) * total;
    while (cursor + 1 < support.size() &&
           static_cast<double>(cumulative[cursor]) < quantile) {
      ++cursor;
    }
    degrees[i] = support[cursor];
  }

  // Parity repair: the stub total must be even.
  std::size_t stub_sum = 0;
  for (const auto d : degrees) stub_sum += d;
  if (stub_sum % 2 != 0) degrees.back() += 1;
  return DegreeDistribution::from_sequence(degrees);
}

JointDegreeDistribution rescale_2k(const JointDegreeDistribution& source,
                                   std::uint64_t target_nodes,
                                   util::Rng& rng, RescaleReport* report) {
  util::expects(source.num_edges() > 0, "rescale_2k: empty source");
  util::expects(target_nodes > 0, "rescale_2k: target_nodes must be > 0");

  const auto source_one_k = source.project_to_1k();
  const double factor = static_cast<double>(target_nodes) /
                        static_cast<double>(source_one_k.num_nodes());

  // Proportional scaling with randomized rounding keeps sparse tail bins
  // alive in expectation instead of truncating them all to zero.
  JointDegreeDistribution scaled;
  for (const auto& entry : source.entries()) {
    const double ideal = static_cast<double>(entry.count) * factor;
    std::int64_t count = static_cast<std::int64_t>(std::floor(ideal));
    if (rng.bernoulli(ideal - std::floor(ideal))) ++count;
    if (count > 0) {
      scaled.histogram().add(
          util::pair_key(static_cast<std::uint32_t>(entry.k1),
                         static_cast<std::uint32_t>(entry.k2)),
          count);
    }
  }
  const std::int64_t scaled_edges = scaled.num_edges();

  // Consistency repair: each degree class's endpoint total must be
  // divisible by its degree.  Adding a (k,1) edge raises class k's total
  // by exactly 1; the degree-1 class is always consistent.
  std::int64_t repair_edges = 0;
  std::map<std::size_t, std::int64_t> endpoints;
  for (const auto& entry : scaled.entries()) {
    if (entry.k1 == entry.k2) {
      endpoints[entry.k1] += 2 * entry.count;
    } else {
      endpoints[entry.k1] += entry.count;
      endpoints[entry.k2] += entry.count;
    }
  }
  for (const auto& [k, count] : endpoints) {
    if (k <= 1) continue;
    const auto remainder =
        count % static_cast<std::int64_t>(k);
    if (remainder == 0) continue;
    const auto missing = static_cast<std::int64_t>(k) - remainder;
    scaled.histogram().add(
        util::pair_key(static_cast<std::uint32_t>(k), 1), missing);
    repair_edges += missing;
  }

  // Realizability guard: a diagonal bin needs at least 2 nodes in its
  // class, and m(k,k) <= C(n(k),2).  Demote impossible diagonal edges to
  // (k,1) edges (adds k-class endpoints one at a time, so the divisible
  // invariant is re-repaired below if needed).
  const auto one_k = scaled.project_to_1k();
  for (const auto& entry : scaled.entries()) {
    if (entry.k1 != entry.k2) continue;
    const auto nk = static_cast<std::int64_t>(one_k.n_of_k(entry.k1));
    const std::int64_t capacity = nk * (nk - 1) / 2;
    if (entry.count > capacity) {
      const std::int64_t excess = entry.count - capacity;
      scaled.histogram().add(
          util::pair_key(static_cast<std::uint32_t>(entry.k1),
                         static_cast<std::uint32_t>(entry.k2)),
          -excess);
      // Each removed diagonal edge frees 2 k-endpoints; restore class
      // balance with 2 (k,1) edges per removed edge.
      scaled.histogram().add(
          util::pair_key(static_cast<std::uint32_t>(entry.k1), 1),
          2 * excess);
      repair_edges += 2 * excess;
    }
  }

  if (report != nullptr) {
    report->scaled_edges = scaled_edges;
    report->repair_edges = repair_edges;
    report->target_nodes =
        static_cast<std::uint64_t>(scaled.project_to_1k().num_nodes());
  }
  return scaled;
}

}  // namespace orbis::dk
