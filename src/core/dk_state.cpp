#include "core/dk_state.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace orbis::dk {

namespace {

double clustering_weight(std::uint32_t degree) {
  if (degree < 2) return 0.0;
  return 2.0 / (static_cast<double>(degree) *
                static_cast<double>(degree - 1));
}

// Below this size journal_add coalesces inline with a linear scan (the
// common case: a swap between typical-degree endpoints touches a dozen
// bins); past it, entries are appended raw and DeltaJournal::coalesce
// sort-merges once, keeping hub endpoints with many distinct neighbor
// degrees off a quadratic path.
constexpr std::size_t kInlineCoalesceLimit = 48;

void journal_add(DeltaJournal::Map& map, std::uint64_t key,
                 std::int64_t delta) {
  if (map.size() < kInlineCoalesceLimit) {
    for (auto& entry : map) {
      if (entry.first == key) {
        entry.second += delta;
        if (entry.second == 0) {
          entry = map.back();
          map.pop_back();
        }
        return;
      }
    }
  }
  map.emplace_back(key, delta);
}

void coalesce_map(DeltaJournal::Map& map) {
  if (map.size() < kInlineCoalesceLimit) return;  // already coalesced
  std::sort(map.begin(), map.end());
  std::size_t out = 0;
  for (std::size_t i = 0; i < map.size();) {
    std::int64_t net = 0;
    std::size_t j = i;
    while (j < map.size() && map[j].first == map[i].first) {
      net += map[j].second;
      ++j;
    }
    if (net != 0) map[out++] = {map[i].first, net};
    i = j;
  }
  map.resize(out);
}

}  // namespace

void DeltaJournal::coalesce() {
  coalesce_map(wedge);
  coalesce_map(triangle);
}

DkState::DkState(const Graph& graph, TrackLevel level)
    : owned_(std::make_unique<EdgeIndex>(graph)), index_(owned_.get()) {
  init(level);
}

DkState::DkState(EdgeIndex& index, TrackLevel level)
    : owned_(nullptr), index_(&index) {
  init(level);
}

void DkState::init(TrackLevel level) {
  level_ = level;
  const NodeId n = index_->num_nodes();
  mark_.assign(n, 0);
  mark_stamp_ = 0;

  for (const auto& e : index_->edges()) {
    const std::uint32_t du = index_->degree(e.u);
    const std::uint32_t dv = index_->degree(e.v);
    jdd_.histogram().increment(util::pair_key(du, dv));
    s_ += static_cast<double>(du) * static_cast<double>(dv);
  }

  if (tracks_three_k()) {
    // The 3K extraction algorithms run on Graph; export the edge set
    // once (construction only — mutations never re-export).
    const Graph graph = index_->to_graph();
    if (tracks_histograms()) {
      three_k_ = ThreeKProfile::from_graph(graph);
      s2_ = three_k_.second_order_likelihood();
    } else {
      // Scalars-only: one-shot extraction for the S2 baseline; the
      // histograms are not retained.
      s2_ = ThreeKProfile::from_graph(graph).second_order_likelihood();
    }
    node_triangles_.assign(n, 0);
    // Per-node triangle counts: t_v = half the edges among N(v), found
    // by marking N(v) and sweeping each neighbor's row — flat scans, no
    // hash probes.
    for (NodeId v = 0; v < n; ++v) {
      const auto nbrs = index_->neighbors(v);
      if (nbrs.size() < 2) continue;
      const std::uint64_t stamp = ++mark_stamp_;
      for (const NodeId x : nbrs) mark_[x] = stamp;
      std::int64_t incidences = 0;
      for (const NodeId x : nbrs) {
        for (const NodeId w : index_->neighbors(x)) {
          if (mark_[w] == stamp) ++incidences;
        }
      }
      const std::int64_t count = incidences / 2;
      node_triangles_[v] = count;
      clustering_sum_ += static_cast<double>(count) *
                         clustering_weight(index_->degree(v));
    }
  }
}

double DkState::mean_clustering() const noexcept {
  if (index_->num_nodes() == 0) return 0.0;
  return clustering_sum_ / static_cast<double>(index_->num_nodes());
}

void DkState::bump_jdd(std::uint32_t k1, std::uint32_t k2,
                       std::int64_t delta) {
  const std::uint64_t key = util::pair_key(k1, k2);
  // The pre-bump count is only observable through a listener; skip the
  // extra histogram probe otherwise.
  const std::int64_t before = listener_ ? jdd_.histogram().count(key) : 0;
  jdd_.histogram().add(key, delta);
  if (listener_) listener_(BinKind::jdd, key, before, before + delta);
}

void DkState::bump_wedge(std::uint32_t end1, std::uint32_t center,
                         std::uint32_t end2, std::int64_t delta) {
  s2_ += static_cast<double>(delta) * static_cast<double>(end1) *
         static_cast<double>(end2);
  if (!tracks_histograms()) return;
  const std::uint64_t key = util::wedge_key(end1, center, end2);
  const std::int64_t before = listener_ ? three_k_.wedges().count(key) : 0;
  three_k_.wedges().add(key, delta);
  if (listener_) listener_(BinKind::wedge, key, before, before + delta);
}

void DkState::bump_triangle(std::uint32_t a, std::uint32_t b,
                            std::uint32_t c, std::int64_t delta) {
  if (!tracks_histograms()) return;
  const std::uint64_t key = util::triangle_key(a, b, c);
  const std::int64_t before =
      listener_ ? three_k_.triangles().count(key) : 0;
  three_k_.triangles().add(key, delta);
  if (listener_) listener_(BinKind::triangle, key, before, before + delta);
}

void DkState::bump_node_triangles(NodeId v, std::int64_t delta) {
  node_triangles_[v] += delta;
  util::ensures(node_triangles_[v] >= 0,
                "DkState: node triangle count went negative");
  clustering_sum_ += static_cast<double>(delta) *
                     clustering_weight(index_->degree(v));
}

void DkState::remove_edge(NodeId u, NodeId v) {
  util::expects(index_->has_edge(u, v), "DkState::remove_edge: no such edge");
  const std::uint32_t du = index_->degree(u);
  const std::uint32_t dv = index_->degree(v);

  if (tracks_three_k()) {
    // Scan BEFORE structural removal so adjacency still reflects the
    // edge.  One mark pass classifies every incident wedge/triangle in
    // O(deg u + deg v) with no hash lookups: stamp N(v), sweep N(u)
    // (common neighbor -> dying triangle, else a wedge centered at u
    // dies), then re-sweep N(v) — entries still carrying the first
    // stamp are non-common and lose their wedge centered at v.
    const std::uint64_t in_v = ++mark_stamp_;
    const std::uint64_t common = ++mark_stamp_;
    const auto u_nbrs = index_->neighbors(u);
    const auto v_nbrs = index_->neighbors(v);
    for (const NodeId y : v_nbrs) {
      if (y != u) mark_[y] = in_v;
    }
    for (const NodeId x : u_nbrs) {
      if (x == v) continue;
      const std::uint32_t dx = index_->degree(x);
      if (mark_[x] == in_v) {
        mark_[x] = common;
        // Triangle (u,v,x) dies; pair (u,v) at center x opens into a wedge.
        bump_triangle(du, dv, dx, -1);
        bump_wedge(du, dx, dv, +1);
        bump_node_triangles(u, -1);
        bump_node_triangles(v, -1);
        bump_node_triangles(x, -1);
      } else {
        // Wedge x - u - v (centered at u) dies with the edge.
        bump_wedge(dx, du, dv, -1);
      }
    }
    for (const NodeId y : v_nbrs) {
      if (y == u) continue;
      if (mark_[y] == in_v) {
        bump_wedge(index_->degree(y), dv, du, -1);
      }
      // Common neighbors already handled from u's side.
    }
  }

  bump_jdd(du, dv, -1);
  s_ -= static_cast<double>(du) * static_cast<double>(dv);
  index_->remove_edge(u, v);
}

void DkState::add_edge(NodeId u, NodeId v) {
  util::expects(u != v, "DkState::add_edge: self-loop");
  util::expects(!index_->has_edge(u, v), "DkState::add_edge: edge exists");
  // Checked here, before any histogram bump, so a violation cannot leave
  // the bookkeeping half-updated.
  util::expects(index_->current_degree(u) < index_->degree(u) &&
                    index_->current_degree(v) < index_->degree(v),
                "DkState::add_edge: node at frozen degree");
  const std::uint32_t du = index_->degree(u);
  const std::uint32_t dv = index_->degree(v);

  if (tracks_three_k()) {
    // Scan BEFORE structural insertion: x ranges over old neighbors
    // only.  Mirror image of the removal pass.
    const std::uint64_t in_v = ++mark_stamp_;
    const std::uint64_t common = ++mark_stamp_;
    const auto u_nbrs = index_->neighbors(u);
    const auto v_nbrs = index_->neighbors(v);
    for (const NodeId y : v_nbrs) mark_[y] = in_v;
    for (const NodeId x : u_nbrs) {
      const std::uint32_t dx = index_->degree(x);
      if (mark_[x] == in_v) {
        mark_[x] = common;
        // Wedge u - x - v closes into a triangle.
        bump_wedge(du, dx, dv, -1);
        bump_triangle(du, dv, dx, +1);
        bump_node_triangles(u, +1);
        bump_node_triangles(v, +1);
        bump_node_triangles(x, +1);
      } else {
        // New wedge x - u - v centered at u.
        bump_wedge(dx, du, dv, +1);
      }
    }
    for (const NodeId y : v_nbrs) {
      if (mark_[y] == in_v) {
        bump_wedge(index_->degree(y), dv, du, +1);
      }
    }
  }

  bump_jdd(du, dv, +1);
  s_ += static_cast<double>(du) * static_cast<double>(dv);
  index_->add_edge(u, v);
}

void DkState::scan_edge_delta(NodeId u, NodeId v, NodeId skip_u,
                              NodeId skip_v, bool removing, SwapDelta& out,
                              EvalScratch& scratch) const {
  const std::uint32_t du = index_->degree(u);
  const std::uint32_t dv = index_->degree(v);
  const std::int64_t sign = removing ? -1 : +1;
  const bool histograms = tracks_histograms();

  auto& mark = scratch.mark;
  const std::uint64_t in_v = ++scratch.stamp;
  const std::uint64_t common = ++scratch.stamp;
  const auto u_nbrs = index_->neighbors(u);
  const auto v_nbrs = index_->neighbors(v);
  for (const NodeId y : v_nbrs) {
    if (y != u && y != skip_v) mark[y] = in_v;
  }
  for (const NodeId x : u_nbrs) {
    if (x == v || x == skip_u) continue;
    const std::uint32_t dx = index_->degree(x);
    if (mark[x] == in_v) {
      mark[x] = common;
      // Removing: triangle (u,v,x) dies, the pair (u,v) at center x
      // opens into a wedge.  Adding: wedge u - x - v closes.
      if (histograms) {
        journal_add(out.journal.triangle, util::triangle_key(du, dv, dx),
                    sign);
        journal_add(out.journal.wedge, util::wedge_key(du, dx, dv), -sign);
      }
      out.s2_delta -= static_cast<double>(sign) * static_cast<double>(du) *
                      static_cast<double>(dv);
      out.triangle_nodes.emplace_back(u, static_cast<std::int32_t>(sign));
      out.triangle_nodes.emplace_back(v, static_cast<std::int32_t>(sign));
      out.triangle_nodes.emplace_back(x, static_cast<std::int32_t>(sign));
      out.clustering_delta +=
          static_cast<double>(sign) *
          (clustering_weight(du) + clustering_weight(dv) +
           clustering_weight(dx));
    } else {
      // Wedge x - u - v centered at u dies (removal) or appears (add).
      if (histograms) {
        journal_add(out.journal.wedge, util::wedge_key(dx, du, dv), sign);
      }
      out.s2_delta += static_cast<double>(sign) * static_cast<double>(dx) *
                      static_cast<double>(dv);
    }
  }
  for (const NodeId y : v_nbrs) {
    if (y == u || y == skip_v) continue;
    if (mark[y] == in_v) {
      // Non-common neighbor of v: its wedge y - v - u centered at v.
      const std::uint32_t dy = index_->degree(y);
      if (histograms) {
        journal_add(out.journal.wedge, util::wedge_key(dy, dv, du), sign);
      }
      out.s2_delta += static_cast<double>(sign) * static_cast<double>(dy) *
                      static_cast<double>(du);
    }
  }
}

void DkState::evaluate_swap(NodeId a, NodeId b, NodeId c, NodeId d,
                            SwapDelta& out) const {
  evaluate_swap(a, b, c, d, out, scratch_);
}

void DkState::evaluate_swap(NodeId a, NodeId b, NodeId c, NodeId d,
                            SwapDelta& out, EvalScratch& scratch) const {
  util::expects(tracks_three_k(),
                "DkState::evaluate_swap: requires 3K tracking");
  constexpr NodeId no_skip = 0xffffffffu;
  if (scratch.mark.size() < index_->num_nodes()) {
    scratch.mark.assign(index_->num_nodes(), 0);
    // Stale stamps never alias fresh zeros: the stamp only grows.
  }
  out.clear();
  out.a = a;
  out.b = b;
  out.c = c;
  out.d = d;
  // The four mutations of the swap, each scanned against the virtual
  // intermediate graph: the first two see the original adjacency (their
  // probed pairs never involve the other removed edge), the additions
  // hide the endpoints their edges lost earlier in the sequence.
  scan_edge_delta(a, b, no_skip, no_skip, /*removing=*/true, out, scratch);
  scan_edge_delta(c, d, no_skip, no_skip, /*removing=*/true, out, scratch);
  scan_edge_delta(a, d, /*skip_u=*/b, /*skip_v=*/c, /*removing=*/false, out,
                  scratch);
  scan_edge_delta(c, b, /*skip_u=*/d, /*skip_v=*/a, /*removing=*/false, out,
                  scratch);
  // No-op below the inline-coalesce limit; one O(k log k) sort-merge
  // when a hub endpoint overflowed it.
  out.journal.coalesce();
}

void DkState::commit_swap(const SwapDelta& delta) {
  // The JDD bin moves of a 2K-preserving swap cancel exactly, and S is a
  // function of the JDD — both stay untouched.
  util::expects(
      index_->degree(delta.b) == index_->degree(delta.d) ||
          index_->degree(delta.a) == index_->degree(delta.c),
      "DkState::commit_swap: swap must preserve the JDD");
  if (tracks_histograms()) {
    for (const auto& [key, net] : delta.journal.wedge) {
      three_k_.wedges().add(key, net);
    }
    for (const auto& [key, net] : delta.journal.triangle) {
      three_k_.triangles().add(key, net);
    }
  }
  s2_ += delta.s2_delta;
  clustering_sum_ += delta.clustering_delta;
  for (const auto& [node, net] : delta.triangle_nodes) {
    node_triangles_[node] += net;
    util::ensures(node_triangles_[node] >= 0,
                  "DkState: node triangle count went negative");
  }
  index_->apply_swap(delta.a, delta.b, delta.c, delta.d);
}

void DkState::verify_consistency() const {
  const Graph graph = to_graph();
  const auto fresh_jdd = JointDegreeDistribution::from_graph(graph);
  util::ensures(fresh_jdd == jdd_, "DkState: JDD diverged from recount");
  double fresh_s = 0.0;
  for (const auto& e : graph.edges()) {
    fresh_s += static_cast<double>(graph.degree(e.u)) *
               static_cast<double>(graph.degree(e.v));
  }
  util::ensures(std::fabs(fresh_s - s_) < 1e-6 * (1.0 + std::fabs(s_)),
                "DkState: likelihood S diverged from recount");
  if (tracks_three_k()) {
    const auto fresh_3k = ThreeKProfile::from_graph(graph);
    if (tracks_histograms()) {
      util::ensures(fresh_3k == three_k_,
                    "DkState: 3K profile diverged from recount");
    }
    const double fresh_s2 = fresh_3k.second_order_likelihood();
    util::ensures(std::fabs(fresh_s2 - s2_) <
                      1e-6 * (1.0 + std::fabs(s2_)),
                  "DkState: S2 diverged from recount");
  }
}

}  // namespace orbis::dk
