#include "core/dk_state.hpp"

#include <cmath>

#include "util/check.hpp"

namespace orbis::dk {

namespace {

double clustering_weight(std::uint32_t degree) {
  if (degree < 2) return 0.0;
  return 2.0 / (static_cast<double>(degree) *
                static_cast<double>(degree - 1));
}

void journal_add(DeltaJournal::Map& map, std::uint64_t key,
                 std::int64_t delta) {
  auto [it, inserted] = map.try_emplace(key, 0);
  it->second += delta;
  if (it->second == 0) map.erase(it);
}

}  // namespace

DkState::DkState(Graph graph, TrackLevel level)
    : graph_(std::move(graph)), level_(level) {
  degrees_.resize(graph_.num_nodes());
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    degrees_[v] = static_cast<std::uint32_t>(graph_.degree(v));
  }
  jdd_ = JointDegreeDistribution::from_graph(graph_);
  for (const auto& e : graph_.edges()) {
    s_ += static_cast<double>(degrees_[e.u]) *
          static_cast<double>(degrees_[e.v]);
  }
  if (tracks_three_k()) {
    if (tracks_histograms()) {
      three_k_ = ThreeKProfile::from_graph(graph_);
      s2_ = three_k_.second_order_likelihood();
    } else {
      // Scalars-only: one-shot extraction for the S2 baseline; the
      // histograms are not retained.
      s2_ = ThreeKProfile::from_graph(graph_).second_order_likelihood();
    }
    node_triangles_.assign(graph_.num_nodes(), 0);
    // Per-node triangle counts via neighbor-pair adjacency (exact).
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      const auto nbrs = graph_.neighbors(v);
      std::int64_t count = 0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
          if (graph_.has_edge(nbrs[i], nbrs[j])) ++count;
        }
      }
      node_triangles_[v] = count;
      clustering_sum_ +=
          static_cast<double>(count) * clustering_weight(degrees_[v]);
    }
  }
}

double DkState::mean_clustering() const noexcept {
  if (graph_.num_nodes() == 0) return 0.0;
  return clustering_sum_ / static_cast<double>(graph_.num_nodes());
}

void DkState::bump_jdd(std::uint32_t k1, std::uint32_t k2,
                       std::int64_t delta) {
  const std::uint64_t key = util::pair_key(k1, k2);
  const std::int64_t before = jdd_.histogram().count(key);
  jdd_.histogram().add(key, delta);
  if (listener_) listener_(BinKind::jdd, key, before, before + delta);
}

void DkState::bump_wedge(std::uint32_t end1, std::uint32_t center,
                         std::uint32_t end2, std::int64_t delta) {
  s2_ += static_cast<double>(delta) * static_cast<double>(end1) *
         static_cast<double>(end2);
  if (!tracks_histograms()) return;
  const std::uint64_t key = util::wedge_key(end1, center, end2);
  const std::int64_t before = three_k_.wedges().count(key);
  three_k_.wedges().add(key, delta);
  if (journaling_) journal_add(journal_.wedge, key, delta);
  if (listener_) listener_(BinKind::wedge, key, before, before + delta);
}

void DkState::bump_triangle(std::uint32_t a, std::uint32_t b,
                            std::uint32_t c, std::int64_t delta) {
  if (!tracks_histograms()) return;
  const std::uint64_t key = util::triangle_key(a, b, c);
  const std::int64_t before = three_k_.triangles().count(key);
  three_k_.triangles().add(key, delta);
  if (journaling_) journal_add(journal_.triangle, key, delta);
  if (listener_) listener_(BinKind::triangle, key, before, before + delta);
}

void DkState::bump_node_triangles(NodeId v, std::int64_t delta) {
  node_triangles_[v] += delta;
  util::ensures(node_triangles_[v] >= 0,
                "DkState: node triangle count went negative");
  clustering_sum_ +=
      static_cast<double>(delta) * clustering_weight(degrees_[v]);
}

void DkState::remove_edge(NodeId u, NodeId v) {
  util::expects(graph_.has_edge(u, v), "DkState::remove_edge: no such edge");
  const std::uint32_t du = degrees_[u];
  const std::uint32_t dv = degrees_[v];

  if (tracks_three_k()) {
    // Scan BEFORE structural removal so adjacency still reflects the edge.
    for (const NodeId x : graph_.neighbors(u)) {
      if (x == v) continue;
      const std::uint32_t dx = degrees_[x];
      if (graph_.has_edge(x, v)) {
        // Triangle (u,v,x) dies; pair (u,v) at center x opens into a wedge.
        bump_triangle(du, dv, dx, -1);
        bump_wedge(du, dx, dv, +1);
        bump_node_triangles(u, -1);
        bump_node_triangles(v, -1);
        bump_node_triangles(x, -1);
      } else {
        // Wedge x - u - v (centered at u) dies with the edge.
        bump_wedge(dx, du, dv, -1);
      }
    }
    for (const NodeId y : graph_.neighbors(v)) {
      if (y == u) continue;
      if (!graph_.has_edge(y, u)) {
        bump_wedge(degrees_[y], dv, du, -1);
      }
      // Common neighbors already handled from u's side.
    }
  }

  bump_jdd(du, dv, -1);
  s_ -= static_cast<double>(du) * static_cast<double>(dv);
  graph_.remove_edge(u, v);
}

void DkState::add_edge(NodeId u, NodeId v) {
  util::expects(u != v, "DkState::add_edge: self-loop");
  util::expects(!graph_.has_edge(u, v), "DkState::add_edge: edge exists");
  const std::uint32_t du = degrees_[u];
  const std::uint32_t dv = degrees_[v];

  if (tracks_three_k()) {
    // Scan BEFORE structural insertion: x ranges over old neighbors only.
    for (const NodeId x : graph_.neighbors(u)) {
      const std::uint32_t dx = degrees_[x];
      if (graph_.has_edge(x, v)) {
        // Wedge u - x - v closes into a triangle.
        bump_wedge(du, dx, dv, -1);
        bump_triangle(du, dv, dx, +1);
        bump_node_triangles(u, +1);
        bump_node_triangles(v, +1);
        bump_node_triangles(x, +1);
      } else {
        // New wedge x - u - v centered at u.
        bump_wedge(dx, du, dv, +1);
      }
    }
    for (const NodeId y : graph_.neighbors(v)) {
      if (!graph_.has_edge(y, u)) {
        bump_wedge(degrees_[y], dv, du, +1);
      }
    }
  }

  bump_jdd(du, dv, +1);
  s_ += static_cast<double>(du) * static_cast<double>(dv);
  graph_.add_edge(u, v);
}

void DkState::verify_consistency() const {
  const auto fresh_jdd = JointDegreeDistribution::from_graph(graph_);
  util::ensures(fresh_jdd == jdd_, "DkState: JDD diverged from recount");
  double fresh_s = 0.0;
  for (const auto& e : graph_.edges()) {
    fresh_s += static_cast<double>(graph_.degree(e.u)) *
               static_cast<double>(graph_.degree(e.v));
  }
  util::ensures(std::fabs(fresh_s - s_) < 1e-6 * (1.0 + std::fabs(s_)),
                "DkState: likelihood S diverged from recount");
  if (tracks_three_k()) {
    const auto fresh_3k = ThreeKProfile::from_graph(graph_);
    if (tracks_histograms()) {
      util::ensures(fresh_3k == three_k_,
                    "DkState: 3K profile diverged from recount");
    }
    const double fresh_s2 = fresh_3k.second_order_likelihood();
    util::ensures(std::fabs(fresh_s2 - s2_) <
                      1e-6 * (1.0 + std::fabs(s2_)),
                  "DkState: S2 diverged from recount");
  }
}

}  // namespace orbis::dk
