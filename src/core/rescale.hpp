// Rescaling dK-distributions to arbitrary graph sizes — the paper's §6
// closing direction ("we are working on appropriate strategies of
// rescaling the dK-distributions to arbitrary graph sizes"), realized by
// the authors' follow-on Orbis work.
//
// 1K: the degree distribution is resampled at n' quantile points
//     (deterministic inverse-CDF), preserving its shape including the
//     heavy tail; the stub total is parity-repaired.
// 2K: every JDD bin is scaled by m'/m = n'/n with randomized rounding,
//     then a consistency repair makes each degree class's endpoint count
//     divisible by its degree again (by adding a few (k,1) edges — the
//     degree-1 class absorbs any remainder), so the result is a valid
//     input for the 2K generators.  The repair inflates the edge count
//     by at most Σ_k (k-1) over inconsistent classes; the report says by
//     how much.
#pragma once

#include "core/degree_distribution.hpp"
#include "core/joint_degree_distribution.hpp"
#include "util/rng.hpp"

namespace orbis::dk {

/// Resample the degree distribution at `target_nodes` quantiles.
/// Throws std::invalid_argument for empty inputs or target_nodes == 0.
DegreeDistribution rescale_1k(const DegreeDistribution& source,
                              std::uint64_t target_nodes);

struct RescaleReport {
  std::int64_t scaled_edges = 0;   // after proportional scaling
  std::int64_t repair_edges = 0;   // (k,1) edges added by the repair
  std::uint64_t target_nodes = 0;  // implied node count (degree >= 1)
};

/// Scale the JDD to a graph ~`target_nodes` large with the same average
/// degree and degree-correlation profile.  The result satisfies the
/// consistency requirement of pseudograph_2k / matching_2k (every
/// endpoint total divisible by its degree).
JointDegreeDistribution rescale_2k(const JointDegreeDistribution& source,
                                   std::uint64_t target_nodes,
                                   util::Rng& rng,
                                   RescaleReport* report = nullptr);

}  // namespace orbis::dk
