#include "metrics/betweenness.hpp"

#include <map>

#include "util/check.hpp"

namespace orbis::metrics {

std::vector<double> betweenness(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<double> centrality(n, 0.0);

  // Brandes (2001), reused scratch buffers across sources.
  std::vector<NodeId> order;               // nodes in BFS visit order
  std::vector<std::int32_t> distance(n);
  std::vector<double> sigma(n);            // shortest-path counts
  std::vector<double> delta(n);            // dependency accumulators
  std::vector<std::vector<NodeId>> predecessors(n);

  for (NodeId source = 0; source < n; ++source) {
    order.clear();
    std::fill(distance.begin(), distance.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& preds : predecessors) preds.clear();

    distance[source] = 0;
    sigma[source] = 1.0;
    std::size_t head = 0;
    order.push_back(source);
    while (head < order.size()) {
      const NodeId v = order[head++];
      for (const NodeId w : g.neighbors(v)) {
        if (distance[w] < 0) {
          distance[w] = distance[v] + 1;
          order.push_back(w);
        }
        if (distance[w] == distance[v] + 1) {
          sigma[w] += sigma[v];
          predecessors[w].push_back(v);
        }
      }
    }

    // Accumulate dependencies in reverse BFS order.
    for (std::size_t i = order.size(); i-- > 1;) {
      const NodeId w = order[i];
      for (const NodeId v : predecessors[w]) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
      centrality[w] += delta[w];
    }
  }

  // Each unordered pair {s,t} was counted from both endpoints.
  for (auto& value : centrality) value /= 2.0;
  return centrality;
}

std::vector<double> normalized_betweenness(const Graph& g) {
  auto centrality = betweenness(g);
  const auto n = static_cast<double>(g.num_nodes());
  if (g.num_nodes() < 3) {
    std::fill(centrality.begin(), centrality.end(), 0.0);
    return centrality;
  }
  const double pairs = (n - 1.0) * (n - 2.0) / 2.0;
  for (auto& value : centrality) value /= pairs;
  return centrality;
}

std::vector<DegreeBetweenness> betweenness_by_degree(const Graph& g) {
  const auto normalized = normalized_betweenness(g);
  std::map<std::size_t, std::pair<std::uint64_t, double>> by_degree;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& [count, sum] = by_degree[g.degree(v)];
    ++count;
    sum += normalized[v];
  }
  std::vector<DegreeBetweenness> result;
  result.reserve(by_degree.size());
  for (const auto& [k, entry] : by_degree) {
    const auto& [count, sum] = entry;
    result.push_back(
        DegreeBetweenness{k, count, sum / static_cast<double>(count)});
  }
  return result;
}

}  // namespace orbis::metrics
