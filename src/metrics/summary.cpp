#include "metrics/summary.hpp"

#include <sstream>

#include "core/three_k_profile.hpp"
#include "graph/algorithms.hpp"
#include "metrics/clustering.hpp"
#include "metrics/distance.hpp"
#include "metrics/scalar.hpp"
#include "metrics/spectrum.hpp"
#include "util/errors.hpp"

namespace orbis::metrics {

ScalarMetrics compute_scalar_metrics(const Graph& g,
                                     const SummaryOptions& options) {
  ScalarMetrics result;
  if (g.num_nodes() == 0) return result;

  // Phase accounting: the cheap scalar bundle counts as one phase,
  // plus one per enabled heavyweight phase.
  const std::uint64_t budget =
      1 + (options.with_distance ? 1 : 0) + (options.with_s2 ? 1 : 0) +
      (options.with_spectrum ? 1 : 0);
  std::uint64_t done = 0;
  const auto checkpoint = [&]() {
    ++done;
    if (options.progress != nullptr) {
      options.progress->report(
          options.progress_lane,
          obs::ProgressSample{.attempts = done, .budget = budget});
    }
    if (options.stop.stop_requested()) {
      throw InterruptedError("compute_scalar_metrics: cancelled");
    }
  };

  const auto gcc = largest_connected_component(g);
  const Graph& core = gcc.graph;
  result.gcc_nodes = core.num_nodes();
  result.gcc_edges = core.num_edges();
  result.average_degree = core.average_degree();
  result.assortativity = assortativity(core);
  result.mean_clustering = mean_clustering(core);
  result.likelihood_s = likelihood_s(core);
  checkpoint();

  if (options.with_distance) {
    const auto distances = distance_distribution(core);
    result.mean_distance = distances.mean();
    result.distance_stddev = distances.stddev();
    checkpoint();
  }
  if (options.with_s2) {
    const auto profile = dk::ThreeKProfile::from_graph(core);
    result.s2 = profile.second_order_likelihood();
    checkpoint();
  }
  if (options.with_spectrum) {
    const auto spectrum = laplacian_extremes(core);
    result.lambda1 = spectrum.lambda1;
    result.lambda_max = spectrum.lambda_max;
    checkpoint();
  }
  return result;
}

ScalarMetrics compute_scalar_metrics(const Graph& g, SummaryOptions options,
                                     const svc::RunContext& ctx) {
  options.apply(ctx);
  return compute_scalar_metrics(g, options);
}

std::string to_string(const ScalarMetrics& m) {
  std::ostringstream out;
  out << "kbar=" << m.average_degree << " r=" << m.assortativity
      << " C=" << m.mean_clustering << " d=" << m.mean_distance
      << " sigma_d=" << m.distance_stddev << " S2=" << m.s2
      << " lambda1=" << m.lambda1 << " lambda_max=" << m.lambda_max
      << " (gcc " << m.gcc_nodes << "/" << m.gcc_edges << ")";
  return out.str();
}

}  // namespace orbis::metrics
