#include "metrics/clustering.hpp"

#include <map>

namespace orbis::metrics {

std::int64_t triangles_through(const Graph& g, NodeId v) {
  const auto nbrs = g.neighbors(v);
  std::int64_t count = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
      if (g.has_edge(nbrs[i], nbrs[j])) ++count;
    }
  }
  return count;
}

double local_clustering(const Graph& g, NodeId v) {
  const auto k = g.degree(v);
  if (k < 2) return 0.0;
  return 2.0 * static_cast<double>(triangles_through(g, v)) /
         (static_cast<double>(k) * static_cast<double>(k - 1));
}

double mean_clustering(const Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  double sum = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) sum += local_clustering(g, v);
  return sum / static_cast<double>(g.num_nodes());
}

std::vector<DegreeClustering> clustering_by_degree(const Graph& g) {
  std::map<std::size_t, std::pair<std::uint64_t, double>> by_degree;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& [count, sum] = by_degree[g.degree(v)];
    ++count;
    sum += local_clustering(g, v);
  }
  std::vector<DegreeClustering> result;
  result.reserve(by_degree.size());
  for (const auto& [k, entry] : by_degree) {
    const auto& [count, sum] = entry;
    result.push_back(
        DegreeClustering{k, count, sum / static_cast<double>(count)});
  }
  return result;
}

std::int64_t total_triangles(const Graph& g) {
  std::int64_t through_sum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    through_sum += triangles_through(g, v);
  }
  // Each triangle is counted at each of its three vertices.
  return through_sum / 3;
}

double global_clustering(const Graph& g) {
  std::int64_t closed = 0;  // ordered closed pairs = 2 t_v summed
  std::int64_t pairs = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto k = static_cast<std::int64_t>(g.degree(v));
    closed += 2 * triangles_through(g, v);
    pairs += k * (k - 1);
  }
  if (pairs == 0) return 0.0;
  return static_cast<double>(closed) / static_cast<double>(pairs);
}

}  // namespace orbis::metrics
