// Node betweenness centrality (paper §2) via Brandes' algorithm.
//
// Betweenness of v = Σ_{s != t != v} σ_st(v) / σ_st, where σ_st is the
// number of shortest s-t paths and σ_st(v) those passing through v.
// Unweighted, undirected; each unordered pair counted once.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace orbis::metrics {

/// Exact betweenness for every node: O(n m) time, O(n + m) memory.
std::vector<double> betweenness(const Graph& g);

/// Betweenness normalized by the number of pairs not involving v,
/// (n-1)(n-2)/2, mapping values into [0,1] — the paper's figures 6b and 9
/// plot this ("normalized node betweenness") against node degree.
std::vector<double> normalized_betweenness(const Graph& g);

struct DegreeBetweenness {
  std::size_t k = 0;
  std::uint64_t num_nodes = 0;
  double mean_normalized_betweenness = 0.0;
};

/// Mean normalized betweenness per degree class, ascending in k.
std::vector<DegreeBetweenness> betweenness_by_degree(const Graph& g);

}  // namespace orbis::metrics
