// ScalarMetrics: the paper's Table-2 bundle, computed in one call.
//
//   k̄    average degree            r     assortativity coefficient
//   C̄    mean clustering           d̄     average hop distance
//   σd   distance std deviation    S2    second-order likelihood
//   λ1   smallest non-zero         λn-1  largest normalized-Laplacian
//        eigenvalue                      eigenvalue
//
// Following §5, all values are computed on the giant connected component.
#pragma once

#include <string>

#include "graph/graph.hpp"
#include "obs/progress.hpp"
#include "svc/run_context.hpp"
#include "util/stop_token.hpp"

namespace orbis::metrics {

struct ScalarMetrics {
  double average_degree = 0.0;   // k̄
  double assortativity = 0.0;    // r
  double mean_clustering = 0.0;  // C̄
  double mean_distance = 0.0;    // d̄
  double distance_stddev = 0.0;  // σd
  double likelihood_s = 0.0;     // S  (Σ_edges k_u k_v)
  double s2 = 0.0;               // S2 (Σ_wedges k1 k3)
  double lambda1 = 0.0;          // λ1
  double lambda_max = 0.0;       // λ_{n-1}
  std::uint64_t gcc_nodes = 0;
  std::uint64_t gcc_edges = 0;
};

struct SummaryOptions {
  bool with_spectrum = true;   // Lanczos runs (skip for speed if unneeded)
  bool with_distance = true;   // full all-pairs BFS
  bool with_s2 = true;         // 3K extraction for S2
  /// Cooperative cancellation, polled between metric phases (the phases
  /// themselves — BFS sweep, 3K extraction, Lanczos — run to completion;
  /// they are each a bounded fraction of the total).  A requested stop
  /// throws orbis::InterruptedError.
  util::StopToken stop{};
  /// Live progress: one sample per completed phase, attempts = phases
  /// done, budget = phases enabled.  Null = silent.
  obs::ProgressSink* progress = nullptr;
  std::uint32_t progress_lane = 0;

  /// Adopts the shared execution context (svc/run_context.hpp).
  void apply(const svc::RunContext& ctx) noexcept {
    stop = ctx.stop;
    progress = ctx.progress;
  }
};

/// Compute the scalar bundle on g's giant connected component.
ScalarMetrics compute_scalar_metrics(const Graph& g,
                                     const SummaryOptions& options = {});

/// Context form — the unified entry-point contract (docs/service.md):
/// applies ctx's stop/progress over `options` and delegates.
ScalarMetrics compute_scalar_metrics(const Graph& g, SummaryOptions options,
                                     const svc::RunContext& ctx);

/// One-line rendering for logs.
std::string to_string(const ScalarMetrics& metrics);

}  // namespace orbis::metrics
