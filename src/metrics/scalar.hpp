// Scalar connectivity metrics (paper §2): assortativity r and the
// likelihood S of Li et al., plus small helpers.
#pragma once

#include "graph/graph.hpp"

namespace orbis::metrics {

/// Newman's assortativity coefficient r: the Pearson correlation of the
/// degrees at the two ends of an edge.  Returns 0 for degenerate inputs
/// (fewer than 2 edges, or zero end-degree variance, e.g. regular graphs).
double assortativity(const Graph& g);

/// Likelihood S = Σ_{(u,v) in E} k_u * k_v (Li et al. [19]); linearly
/// related to r and fully determined by the 2K-distribution.
double likelihood_s(const Graph& g);

/// S normalized by the graph's own hub product scale:
/// S / Σ_{(u,v) in E} sorted-degree pairing upper bound is expensive;
/// the paper instead reports ratios of S values across graphs with the
/// same 1K-distribution, which callers can form directly from
/// likelihood_s.  Kept here: S / (Σ_v k_v^3 / 2), a cheap upper bound.
double likelihood_s_upper_bound(const Graph& g);

}  // namespace orbis::metrics
