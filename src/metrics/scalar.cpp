#include "metrics/scalar.hpp"

#include <cmath>

namespace orbis::metrics {

double assortativity(const Graph& g) {
  const std::size_t m = g.num_edges();
  if (m < 2) return 0.0;

  // Newman (2002): r = (M^-1 Σ j k - [M^-1 Σ (j+k)/2]^2) /
  //                    (M^-1 Σ (j^2+k^2)/2 - [M^-1 Σ (j+k)/2]^2)
  double sum_product = 0.0;
  double sum_mean = 0.0;
  double sum_square = 0.0;
  for (const auto& e : g.edges()) {
    const auto j = static_cast<double>(g.degree(e.u));
    const auto k = static_cast<double>(g.degree(e.v));
    sum_product += j * k;
    sum_mean += 0.5 * (j + k);
    sum_square += 0.5 * (j * j + k * k);
  }
  const auto inv_m = 1.0 / static_cast<double>(m);
  const double mean = inv_m * sum_mean;
  const double numerator = inv_m * sum_product - mean * mean;
  const double denominator = inv_m * sum_square - mean * mean;
  if (std::fabs(denominator) < 1e-12) return 0.0;
  return numerator / denominator;
}

double likelihood_s(const Graph& g) {
  double s = 0.0;
  for (const auto& e : g.edges()) {
    s += static_cast<double>(g.degree(e.u)) *
         static_cast<double>(g.degree(e.v));
  }
  return s;
}

double likelihood_s_upper_bound(const Graph& g) {
  double bound = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto k = static_cast<double>(g.degree(v));
    bound += k * k * k;
  }
  return bound / 2.0;
}

}  // namespace orbis::metrics
