// Dense symmetric eigensolver (cyclic Jacobi) — reference implementation
// for validating the Lanczos path on small graphs, and for computing full
// normalized-Laplacian spectra when n is tiny.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace orbis::metrics {

/// Symmetric dense matrix in row-major order.
using DenseMatrix = std::vector<std::vector<double>>;

/// All eigenvalues of a symmetric matrix, ascending (cyclic Jacobi).
std::vector<double> dense_symmetric_eigenvalues(DenseMatrix matrix);

/// Dense normalized Laplacian of a graph (isolated nodes get L_ii = 0,
/// matching the convention that they contribute a zero eigenvalue).
DenseMatrix dense_normalized_laplacian(const Graph& g);

/// Full normalized-Laplacian spectrum, ascending; intended for n <= ~500.
std::vector<double> full_laplacian_spectrum(const Graph& g);

}  // namespace orbis::metrics
