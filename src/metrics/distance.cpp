#include "metrics/distance.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"

namespace orbis::metrics {

namespace {

void accumulate_from_source(const Graph& g, NodeId source,
                            DistanceDistribution& dist) {
  const auto distances = bfs_distances(g, source);
  for (const auto d : distances) {
    if (d < 0) {
      ++dist.unreachable_pairs;
      continue;
    }
    const auto x = static_cast<std::size_t>(d);
    if (x >= dist.counts.size()) dist.counts.resize(x + 1, 0);
    ++dist.counts[x];
  }
}

}  // namespace

std::vector<double> DistanceDistribution::pdf() const {
  std::vector<double> result(counts.size(), 0.0);
  if (num_nodes == 0) return result;
  const double n2 =
      static_cast<double>(num_nodes) * static_cast<double>(num_nodes);
  for (std::size_t x = 0; x < counts.size(); ++x) {
    result[x] = static_cast<double>(counts[x]) / n2;
  }
  return result;
}

double DistanceDistribution::mean() const {
  std::uint64_t pairs = 0;
  double sum = 0.0;
  for (std::size_t x = 1; x < counts.size(); ++x) {
    pairs += counts[x];
    sum += static_cast<double>(x) * static_cast<double>(counts[x]);
  }
  return pairs > 0 ? sum / static_cast<double>(pairs) : 0.0;
}

double DistanceDistribution::stddev() const {
  std::uint64_t pairs = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t x = 1; x < counts.size(); ++x) {
    const auto c = static_cast<double>(counts[x]);
    pairs += counts[x];
    sum += static_cast<double>(x) * c;
    sum_sq += static_cast<double>(x) * static_cast<double>(x) * c;
  }
  if (pairs == 0) return 0.0;
  const double mean = sum / static_cast<double>(pairs);
  const double variance = sum_sq / static_cast<double>(pairs) - mean * mean;
  return variance > 0.0 ? std::sqrt(variance) : 0.0;
}

DistanceDistribution distance_distribution(const Graph& g) {
  DistanceDistribution dist;
  dist.num_nodes = g.num_nodes();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    accumulate_from_source(g, v, dist);
  }
  return dist;
}

DistanceDistribution sampled_distance_distribution(const Graph& g,
                                                   std::size_t num_sources,
                                                   util::Rng& rng) {
  if (num_sources >= g.num_nodes()) return distance_distribution(g);
  DistanceDistribution dist;
  dist.num_nodes = g.num_nodes();
  std::vector<NodeId> sources(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) sources[v] = v;
  rng.shuffle(sources);
  sources.resize(num_sources);
  for (const NodeId v : sources) accumulate_from_source(g, v, dist);
  // Rescale counts so pdf() keeps the n^2 normalization semantics.
  const double scale = static_cast<double>(g.num_nodes()) /
                       static_cast<double>(num_sources);
  for (auto& c : dist.counts) {
    c = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(c) * scale));
  }
  return dist;
}

double average_distance(const Graph& g) {
  return distance_distribution(g).mean();
}

}  // namespace orbis::metrics
