#include "metrics/dense_eigen.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace orbis::metrics {

std::vector<double> dense_symmetric_eigenvalues(DenseMatrix a) {
  const std::size_t n = a.size();
  for (const auto& row : a) {
    util::expects(row.size() == n, "dense_symmetric_eigenvalues: not square");
  }
  if (n == 0) return {};

  // Cyclic Jacobi: rotate away off-diagonal mass until convergence.
  for (std::size_t sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a[p][q] * a[p][q];
    }
    if (off < 1e-22) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::fabs(a[p][q]) < 1e-15) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t =
            std::copysign(1.0, theta) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t i = 0; i < n; ++i) {
          const double aip = a[i][p];
          const double aiq = a[i][q];
          a[i][p] = c * aip - s * aiq;
          a[i][q] = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double api = a[p][i];
          const double aqi = a[q][i];
          a[p][i] = c * api - s * aqi;
          a[q][i] = s * api + c * aqi;
        }
      }
    }
  }

  std::vector<double> eigenvalues(n);
  for (std::size_t i = 0; i < n; ++i) eigenvalues[i] = a[i][i];
  std::sort(eigenvalues.begin(), eigenvalues.end());
  return eigenvalues;
}

DenseMatrix dense_normalized_laplacian(const Graph& g) {
  const std::size_t n = g.num_nodes();
  DenseMatrix laplacian(n, std::vector<double>(n, 0.0));
  for (NodeId v = 0; v < n; ++v) {
    if (g.degree(v) > 0) laplacian[v][v] = 1.0;
  }
  for (const auto& e : g.edges()) {
    const double w = -1.0 / std::sqrt(static_cast<double>(g.degree(e.u)) *
                                      static_cast<double>(g.degree(e.v)));
    laplacian[e.u][e.v] = w;
    laplacian[e.v][e.u] = w;
  }
  return laplacian;
}

std::vector<double> full_laplacian_spectrum(const Graph& g) {
  return dense_symmetric_eigenvalues(dense_normalized_laplacian(g));
}

}  // namespace orbis::metrics
