// Distance (hop-count) distribution d(x) — paper §2: the number of node
// pairs at distance x divided by n^2, self-pairs included.  Also supplies
// the scalar summaries d̄ (mean) and σd (standard deviation) used in
// Tables 3, 4, 6, 7, 8, computed over connected ordered pairs with x >= 1.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace orbis::metrics {

struct DistanceDistribution {
  /// counts[x] = number of ordered node pairs (self-pairs at x=0) at
  /// hop distance x; unreachable pairs are not counted.
  std::vector<std::uint64_t> counts;
  std::uint64_t num_nodes = 0;
  std::uint64_t unreachable_pairs = 0;

  /// d(x) = counts[x] / n^2 (the paper's normalization).
  std::vector<double> pdf() const;

  /// Mean hop distance over ordered pairs with x >= 1.
  double mean() const;

  /// Population standard deviation over ordered pairs with x >= 1.
  double stddev() const;

  std::size_t diameter() const {
    return counts.empty() ? 0 : counts.size() - 1;
  }
};

/// Exact distribution via BFS from every node: O(n (n + m)).
DistanceDistribution distance_distribution(const Graph& g);

/// Estimated distribution via BFS from `num_sources` uniformly sampled
/// sources (ordered pairs source->target); exact when num_sources >= n.
DistanceDistribution sampled_distance_distribution(const Graph& g,
                                                   std::size_t num_sources,
                                                   util::Rng& rng);

/// Average distance d̄ (convenience wrapper).
double average_distance(const Graph& g);

}  // namespace orbis::metrics
