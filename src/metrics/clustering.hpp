// Clustering metrics (paper §2): local clustering, mean clustering C̄,
// and degree-dependent clustering C(k).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace orbis::metrics {

/// Number of edges among the neighbors of v (= triangles through v).
std::int64_t triangles_through(const Graph& g, NodeId v);

/// Local clustering c_v = 2 t_v / (k_v (k_v - 1)); 0 when k_v < 2.
double local_clustering(const Graph& g, NodeId v);

/// Mean local clustering C̄ over ALL nodes (degree<2 nodes contribute 0,
/// matching the paper's C̄ = 0 for the almost-tree HOT graph).
double mean_clustering(const Graph& g);

/// One C(k) sample: degree k, number of nodes with that degree, and their
/// mean local clustering.
struct DegreeClustering {
  std::size_t k = 0;
  std::uint64_t num_nodes = 0;
  double mean_clustering = 0.0;
};

/// C(k) for every degree with at least one node, ascending in k.
/// (Figures 5a, 6c, 7 plot exactly this series.)
std::vector<DegreeClustering> clustering_by_degree(const Graph& g);

/// Total number of triangles in the graph.
std::int64_t total_triangles(const Graph& g);

/// Global (transitivity) clustering: 3 * triangles / open-or-closed
/// neighbor pairs.  Provided for completeness; the paper uses C̄.
double global_clustering(const Graph& g);

}  // namespace orbis::metrics
