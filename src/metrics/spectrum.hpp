// Spectrum of the normalized Laplacian (paper §2).
//
// L = I - D^{-1/2} A D^{-1/2}; all eigenvalues lie in [0, 2].  The paper
// tracks the extremes: λ1, the smallest NON-ZERO eigenvalue (connectivity
// / resilience bound), and λ_{n-1}, the largest (bipartiteness bound).
//
// Implementation: matrix-free Lanczos with full reorthogonalization.
// λ_{n-1} comes from plain Lanczos; λ1 from Lanczos with the known null
// vector v0 ∝ D^{1/2} 1 deflated out (v0 spans L's kernel exactly when
// the graph is connected, so the smallest Ritz value in the deflated
// space is λ1).  Metrics are defined on the GCC; disconnected inputs are
// reduced to their largest component first.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace orbis::metrics {

struct SpectrumResult {
  double lambda1 = 0.0;      // smallest non-zero eigenvalue
  double lambda_max = 0.0;   // largest eigenvalue (λ_{n-1})
  std::size_t iterations = 0;
};

struct SpectrumOptions {
  std::size_t max_iterations = 300;  // Lanczos basis size cap
  double tolerance = 1e-9;           // Ritz value convergence threshold
  std::uint64_t seed = 1;            // start-vector randomization
};

/// Extreme normalized-Laplacian eigenvalues of g's largest component.
SpectrumResult laplacian_extremes(const Graph& g,
                                  const SpectrumOptions& options = {});

/// Eigenvalues of a symmetric tridiagonal matrix (diagonal + off-diagonal)
/// via the implicit-shift QL algorithm; ascending order.  Exposed for
/// testing and reuse.
std::vector<double> tridiagonal_eigenvalues(std::vector<double> diagonal,
                                            std::vector<double> off_diagonal);

}  // namespace orbis::metrics
