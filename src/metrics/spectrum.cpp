#include "metrics/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace orbis::metrics {

namespace {

using Vector = std::vector<double>;

double dot(const Vector& a, const Vector& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm(const Vector& a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, const Vector& x, Vector& y) {
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

void scale(Vector& x, double alpha) {
  for (auto& value : x) value *= alpha;
}

/// y = L x for the normalized Laplacian of g (all degrees must be >= 1).
class LaplacianOperator {
 public:
  explicit LaplacianOperator(const Graph& g) : graph_(g) {
    inv_sqrt_degree_.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto d = g.degree(v);
      util::expects(d > 0, "LaplacianOperator: isolated node");
      inv_sqrt_degree_[v] = 1.0 / std::sqrt(static_cast<double>(d));
    }
  }

  std::size_t dimension() const { return graph_.num_nodes(); }

  void apply(const Vector& x, Vector& y) const {
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      double acc = 0.0;
      for (const NodeId w : graph_.neighbors(v)) {
        acc += x[w] * inv_sqrt_degree_[w];
      }
      y[v] = x[v] - inv_sqrt_degree_[v] * acc;
    }
  }

  /// Normalized kernel vector v0 ∝ D^{1/2} 1.
  Vector kernel_vector() const {
    Vector v0(graph_.num_nodes());
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      v0[v] = std::sqrt(static_cast<double>(graph_.degree(v)));
    }
    const double v0_norm = norm(v0);
    scale(v0, 1.0 / v0_norm);
    return v0;
  }

 private:
  const Graph& graph_;
  Vector inv_sqrt_degree_;
};

struct LanczosResult {
  std::vector<double> ritz_values;  // ascending
  std::size_t iterations = 0;
};

/// Lanczos with full reorthogonalization against both the Krylov basis
/// and an optional deflation set.
LanczosResult lanczos(const LaplacianOperator& op,
                      const std::vector<Vector>& deflate,
                      const SpectrumOptions& options) {
  const std::size_t n = op.dimension();
  const std::size_t max_iter = std::min(options.max_iterations, n);
  util::Rng rng(options.seed);

  std::vector<Vector> basis;
  std::vector<double> alpha;
  std::vector<double> beta;  // beta[j] couples q_j and q_{j+1}

  const auto orthogonalize = [&](Vector& w) {
    for (const auto& d : deflate) axpy(-dot(d, w), d, w);
    for (const auto& q : basis) axpy(-dot(q, w), q, w);
  };

  // Random start vector, projected off the deflation set.
  Vector q(n);
  for (auto& value : q) value = rng.uniform_real() - 0.5;
  orthogonalize(q);
  const double q_norm = norm(q);
  util::ensures(q_norm > 1e-12, "lanczos: degenerate start vector");
  scale(q, 1.0 / q_norm);
  basis.push_back(q);

  Vector w(n);
  double previous_extreme_low = 1e300;
  double previous_extreme_high = -1e300;
  LanczosResult result;

  for (std::size_t j = 0; j < max_iter; ++j) {
    op.apply(basis[j], w);
    const double a_j = dot(basis[j], w);
    alpha.push_back(a_j);

    axpy(-a_j, basis[j], w);
    if (j > 0) axpy(-beta[j - 1], basis[j - 1], w);
    orthogonalize(w);  // full reorthogonalization (twice is overkill here)
    orthogonalize(w);

    result.iterations = j + 1;
    const double b_j = norm(w);

    // Krylov space exhausted (invariant subspace found) or budget spent:
    // the current tridiagonal matrix is final.
    if (b_j < 1e-10 || j + 1 == max_iter) {
      result.ritz_values = tridiagonal_eigenvalues(
          alpha, std::vector<double>(beta.begin(), beta.end()));
      return result;
    }

    // Convergence probe on the extreme Ritz values every few steps.
    if (j >= 2 && j % 5 == 0) {
      auto ritz = tridiagonal_eigenvalues(
          alpha, std::vector<double>(beta.begin(), beta.end()));
      const double low = ritz.front();
      const double high = ritz.back();
      const bool converged =
          std::fabs(low - previous_extreme_low) < options.tolerance &&
          std::fabs(high - previous_extreme_high) < options.tolerance;
      previous_extreme_low = low;
      previous_extreme_high = high;
      if (converged) {
        result.ritz_values = std::move(ritz);
        return result;
      }
    }

    beta.push_back(b_j);
    Vector next = w;
    scale(next, 1.0 / b_j);
    basis.push_back(std::move(next));
  }

  result.ritz_values = tridiagonal_eigenvalues(
      alpha, std::vector<double>(beta.begin(), beta.end()));
  return result;
}

}  // namespace

std::vector<double> tridiagonal_eigenvalues(std::vector<double> diagonal,
                                            std::vector<double> off_diagonal) {
  // Implicit-shift QL ("tqli" without eigenvectors).
  const std::size_t n = diagonal.size();
  util::expects(off_diagonal.size() + 1 == n || (n == 0 && off_diagonal.empty()),
                "tridiagonal_eigenvalues: off-diagonal size must be n-1");
  if (n == 0) return {};
  std::vector<double>& d = diagonal;
  std::vector<double> e(std::move(off_diagonal));
  e.push_back(0.0);

  // Implicit-shift QL with deflation (Numerical Recipes "tqli" layout,
  // eigenvalues only).
  for (std::size_t l = 0; l < n; ++l) {
    std::size_t iterations = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        util::ensures(++iterations <= 64,
                      "tridiagonal_eigenvalues: QL failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  std::sort(d.begin(), d.end());
  return d;
}

SpectrumResult laplacian_extremes(const Graph& g,
                                  const SpectrumOptions& options) {
  SpectrumResult result;
  if (g.num_nodes() == 0 || g.num_edges() == 0) return result;

  const auto gcc = largest_connected_component(g);
  const Graph& core = gcc.graph;
  if (core.num_nodes() < 2) return result;

  const LaplacianOperator op(core);

  if (core.num_nodes() == 2) {
    result.lambda1 = 2.0;
    result.lambda_max = 2.0;
    result.iterations = 1;
    return result;
  }

  // λ_{n-1}: plain Lanczos — the top Ritz value.
  const auto top = lanczos(op, {}, options);
  result.lambda_max = top.ritz_values.back();

  // λ1: deflate the exact kernel vector; the bottom Ritz value remains.
  const std::vector<Vector> deflate{op.kernel_vector()};
  auto opts1 = options;
  opts1.seed = options.seed + 1;
  const auto bottom = lanczos(op, deflate, opts1);
  result.lambda1 = std::max(0.0, bottom.ritz_values.front());
  result.iterations = top.iterations + bottom.iterations;
  return result;
}

}  // namespace orbis::metrics
