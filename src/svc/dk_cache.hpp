// Content-addressed cache of dK extractions (docs/service.md, "dK
// cache").
//
// Extracting the dK-series of a large edge-list file is the expensive
// half of every `extract -> generate` round trip, and topology-service
// clients ask for the same file repeatedly (re-runs, parameter sweeps
// over the GENERATE side, several tenants sharing one measured
// topology).  DkCache memoizes the extraction on disk, keyed by the
// CONTENT of the edge list — not its path or mtime — so renamed copies
// and re-uploads hit, and any edit (one flipped edge) misses.
//
// Key = 128-bit order-invariant hash of the canonicalized edge multiset
// (each edge normalized to (min,max), self-loops dropped — exactly the
// canonicalization the extractor itself applies) folded with max_d and
// the extractor options.  Order-invariance comes from commutative
// accumulation (sum + xor + count of per-edge splitmix mixes under two
// independent seeds), so a shuffled copy of the same file is a HIT.
// Duplicate edge lines do perturb the key — a file with duplicates
// misses against its deduplicated twin — which only costs a redundant
// extraction, never a wrong answer.  Hash collisions across different
// contents are the usual content-addressing trade: at 128 bits the
// probability is negligible (same regime as git object ids).
//
// Storage: `<dir>/<key>.1k[.2k[.3k]]`, written by the SAME
// io::write_*k_file serializers `orbis_tool extract` uses, through the
// atomic-write protocol (io/atomic_file.hpp) — a cache entry is either
// absent or complete, never truncated.  A hit is served as a byte copy
// of the stored artifacts; since miss and hit both publish through one
// byte-copy path from serializer output, a hit is bit-identical to a
// fresh extraction by construction (tests/svc/test_dk_cache.cpp pins
// this against `orbis_tool extract`).
//
// Concurrency: extractions are single-flighted per key — a second
// request for a key mid-extraction blocks until the first publishes,
// then reads the entry as a hit.  Concurrent requests for different
// keys proceed independently.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "io/chunked_edge_reader.hpp"

namespace orbis::svc {

/// 128-bit content key; value identity is the cache identity.
struct CacheKey {
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  /// 32 lowercase hex chars; the on-disk entry name.
  std::string hex() const;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

/// Computes the content key of `edge_list_path` for an extraction up to
/// `max_d` under `options` (one streaming pass over the file; honors
/// options.reader and polls options.stop).  Pure: same content + same
/// parameters -> same key, regardless of path, edge order, or comments.
CacheKey dk_cache_key(const std::string& edge_list_path, int max_d,
                      const io::StreamingExtractOptions& options = {});

class DkCache {
 public:
  /// `dir` must exist (the service creates its own); entries are
  /// created inside it, nothing outside is touched.
  explicit DkCache(std::string dir);

  struct Outcome {
    bool hit = false;
    CacheKey key{};
    /// Published destination files (`<out_prefix>.1k` ...), in d order.
    std::vector<std::string> files;
    /// Fresh-extraction diagnostics; zero on a hit (the stored entry
    /// does not retain them).
    std::size_t skipped_self_loops = 0;
    std::size_t skipped_duplicates = 0;
  };

  /// Extracts the dK-distributions of `edge_list_path` up to `max_d`
  /// (in [1,3]) and publishes them as `<out_prefix>.1k[.2k[.3k]]`,
  /// through the content-addressed store.  Cancellation: polls
  /// options.stop during both the keying pass and a fresh extraction
  /// (orbis::InterruptedError); a cancelled miss leaves no partial
  /// entry behind.
  Outcome extract_to(const std::string& edge_list_path, int max_d,
                     const std::string& out_prefix,
                     const io::StreamingExtractOptions& options = {});

  const std::string& dir() const noexcept { return dir_; }

 private:
  /// Cache-entry file paths for `key` up to `max_d`.
  std::vector<std::string> entry_files(const CacheKey& key, int max_d) const;

  std::string dir_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::set<std::string> in_flight_;  // keys being extracted right now
};

}  // namespace orbis::svc
