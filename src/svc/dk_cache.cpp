#include "svc/dk_cache.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <utility>

#include "io/atomic_file.hpp"
#include "io/dk_serialization.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"

namespace orbis::svc {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// One edge's contribution under a seed.  lo/hi are already normalized
/// (lo <= hi), so the mix needs no symmetry of its own — it must only
/// decorrelate the two coordinates.
std::uint64_t edge_mix(std::uint64_t seed, std::uint64_t lo,
                      std::uint64_t hi) {
  return splitmix64(splitmix64(lo + seed) ^ splitmix64(hi + ~seed));
}

bool file_exists(const std::string& path) {
  struct ::stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

/// Byte copy through the atomic-write protocol: the destination is
/// either the previous file or the complete copy, never a prefix.
void copy_file_atomic(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  if (!in) {
    throw IoError("dk_cache: cannot read stored entry: " + from);
  }
  io::write_file_atomic(to, [&](std::ostream& out) { out << in.rdbuf(); });
}

obs::Counter& hits_counter() {
  static obs::Counter& c = obs::Registry::global().counter("svc.cache.hits");
  return c;
}

obs::Counter& misses_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("svc.cache.misses");
  return c;
}

}  // namespace

std::string CacheKey::hex() const {
  char buffer[33];
  std::snprintf(buffer, sizeof(buffer), "%016llx%016llx",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return std::string(buffer, 32);
}

CacheKey dk_cache_key(const std::string& edge_list_path, int max_d,
                      const io::StreamingExtractOptions& options) {
  const obs::Span span("svc.cache.key");
  io::ChunkedEdgeListReader reader(edge_list_path, options.reader);

  // Two independent commutative accumulators; the final key mixes both
  // with the edge count so (sum, xor) cancellation tricks in either
  // lane still perturb the other.
  std::uint64_t sum[2] = {0, 0};
  std::uint64_t xr[2] = {0, 0};
  std::uint64_t edges = 0;
  reader.run_pass([&](std::span<const io::RawEdge> chunk) {
    if (options.stop.stop_requested()) {
      throw InterruptedError("dk_cache_key: cancelled");
    }
    for (const io::RawEdge& edge : chunk) {
      if (edge.u == edge.v) continue;  // extractor drops self-loops
      const std::uint64_t lo = edge.u < edge.v ? edge.u : edge.v;
      const std::uint64_t hi = edge.u < edge.v ? edge.v : edge.u;
      const std::uint64_t m0 = edge_mix(0x8badf00d5eedull, lo, hi);
      const std::uint64_t m1 = edge_mix(0x1234fedc4321ull, lo, hi);
      sum[0] += m0;
      xr[0] ^= m0;
      sum[1] += m1;
      xr[1] ^= m1;
      ++edges;
    }
  });

  // Fold in everything else that changes the extraction's output: the
  // requested depth, the extractor options, and the writer header's
  // declared node count (it decides whether isolated nodes exist).
  const std::uint64_t params =
      splitmix64((static_cast<std::uint64_t>(max_d) << 1) |
                 (options.extractor.assume_simple ? 1u : 0u)) ^
      splitmix64(reader.declared_nodes() + 0x5ca1ab1eull);
  CacheKey key;
  key.a = splitmix64(sum[0] ^ splitmix64(xr[0] ^ edges)) ^ params;
  key.b = splitmix64(sum[1] ^ splitmix64(xr[1] + edges)) ^
          splitmix64(params);
  return key;
}

DkCache::DkCache(std::string dir) : dir_(std::move(dir)) {
  util::expects(!dir_.empty(), "DkCache: dir must not be empty");
}

std::vector<std::string> DkCache::entry_files(const CacheKey& key,
                                              int max_d) const {
  const std::string base = dir_ + "/" + key.hex();
  std::vector<std::string> files = {base + ".1k"};
  if (max_d >= 2) files.push_back(base + ".2k");
  if (max_d >= 3) files.push_back(base + ".3k");
  return files;
}

DkCache::Outcome DkCache::extract_to(const std::string& edge_list_path,
                                     int max_d,
                                     const std::string& out_prefix,
                                     const io::StreamingExtractOptions& options) {
  util::expects(max_d >= 1 && max_d <= 3,
                "DkCache::extract_to: max_d must be in [1,3]");
  Outcome outcome;
  outcome.key = dk_cache_key(edge_list_path, max_d, options);
  const std::string key_hex = outcome.key.hex();
  const std::vector<std::string> stored = entry_files(outcome.key, max_d);

  // Single-flight: wait out any in-progress extraction of this key,
  // then decide hit/miss while holding the lock.
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return in_flight_.count(key_hex) == 0; });
  bool complete = true;
  for (const std::string& path : stored) {
    if (!file_exists(path)) {
      complete = false;
      break;
    }
  }
  if (complete) {
    outcome.hit = true;
    hits_counter().add(1);
  } else {
    in_flight_.insert(key_hex);
  }
  lock.unlock();

  if (!outcome.hit) {
    // Fresh extraction outside the lock (other keys keep flowing); the
    // in-flight marker is cleared on every exit path, success or throw.
    struct FlightGuard {
      DkCache* cache;
      const std::string& key;
      ~FlightGuard() {
        std::lock_guard<std::mutex> guard(cache->mutex_);
        cache->in_flight_.erase(key);
        cache->cv_.notify_all();
      }
    } flight_guard{this, key_hex};

    const obs::Span span("svc.cache.extract");
    misses_counter().add(1);
    const io::StreamingExtractResult result =
        io::extract_dk_streaming(edge_list_path, max_d, options);
    outcome.skipped_self_loops = result.skipped_self_loops;
    outcome.skipped_duplicates = result.skipped_duplicates;
    // Atomic writes ordered so the LAST file to appear completes the
    // entry: a concurrent reader that saw every file sees final bytes.
    io::write_1k_file(stored[0], result.distributions.degree);
    if (max_d >= 2) io::write_2k_file(stored[1], result.distributions.joint);
    if (max_d >= 3) {
      io::write_3k_file(stored[2], result.distributions.three_k);
    }
  }

  // Publish: hit and miss serve the caller through the SAME byte-copy
  // path from the stored entry, so the two are trivially bit-identical.
  static const char* const kSuffixes[] = {".1k", ".2k", ".3k"};
  for (std::size_t i = 0; i < stored.size(); ++i) {
    const std::string destination = out_prefix + kSuffixes[i];
    copy_file_atomic(stored[i], destination);
    outcome.files.push_back(destination);
  }
  return outcome;
}

}  // namespace orbis::svc
