// The topology service (docs/service.md): an asynchronous job API over
// the library's extract / generate / metrics entry points.
//
// Server is the IN-PROCESS facade — `orbis_server` (examples/) is a
// thin stdio JSON front end over it, and tests drive it directly with
// concurrent submitting threads.  One Server owns:
//
//   * a FairQueue (svc/scheduler.hpp) of job slices and `workers`
//     dispatch threads (default 1: deterministic dispatch order, the
//     configuration the cache and fairness tests rely on);
//   * a DkCache (svc/dk_cache.hpp) shared by every extract job;
//   * a job table: per job a svc::RunContext (seed, StopToken from the
//     job's own StopSource, a per-job metrics Registry, a progress
//     adapter that re-emits samples as events), state, and results.
//
// Job model.  Extract and metrics jobs are INTERACTIVE: one slice,
// start to finish.  Generate jobs are BATCH: the server runs them as
// checkpoint LEGS (gen/checkpoint.hpp) — each slice executes exactly
// one leg (an on_checkpoint callback requests stop on the slice's
// token, so the driver returns at the first boundary), then the job
// re-queues.  Interactive work therefore interleaves with a
// long-running generate at leg boundaries, and the FairQueue's stride
// policy bounds how long a backlog of either class can delay the
// other.  A d = 3 generate runs its paper-§5.1 stages in sequence
// (1K bootstrap -> 2K legs -> 3K legs) under one job id.
//
// Cancellation: cancel() sets the job's cancelled flag and requests
// stop on its StopSource.  An extract/metrics slice aborts at the next
// poll point (orbis::InterruptedError); a generate slice discards its
// partial leg (checkpoint-driver semantics) and the job completes with
// state `interrupted` — never blocking, and never publishing mid-leg
// state.  Cancelling a queued job resolves it the moment a worker
// pops it.
//
// Every state change is emitted as a JobEvent through
// ServerOptions::on_event (called from worker threads — handlers must
// be thread-safe) and is also visible via status()/wait().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "metrics/summary.hpp"
#include "svc/dk_cache.hpp"
#include "svc/run_context.hpp"
#include "svc/scheduler.hpp"

namespace orbis::svc {

enum class JobKind : std::uint8_t { extract, generate, metrics };

enum class JobState : std::uint8_t {
  queued,
  running,
  done,         // completed successfully
  failed,       // threw; JobInfo::error has the message
  interrupted,  // cancelled before completion
};

const char* to_string(JobKind kind) noexcept;
const char* to_string(JobState state) noexcept;

/// One submission.  Field applicability by kind:
///   extract   input_path = edge list, output = dK file prefix, d in [1,3]
///   generate  input_path = dK file prefix (an extract's output),
///             output = edge-list path, d in {2,3}
///   metrics   input_path = edge list (output unused)
struct JobRequest {
  JobKind kind = JobKind::extract;
  std::string input_path;
  std::string output;
  int d = 3;
  /// Execution context: seed (generate), stop/progress/metrics are
  /// OWNED by the server per job — caller-set stop/progress/metrics
  /// fields are ignored.
  RunContext ctx{};
  /// extract: trusted-simple input (dk::StreamingOptions).
  bool assume_simple = false;
  /// generate: budget/temperature knobs; 0 = TargetingOptions defaults.
  std::uint64_t attempts = 0;
  std::size_t attempts_per_edge = 0;
  double temperature = 0.0;
  /// generate: leg length; 0 = auto (budget / 8, so every run has
  /// interleaving boundaries).
  std::uint64_t checkpoint_every = 0;
  /// metrics: phase toggles (metrics/summary.hpp).
  bool with_spectrum = true;
  bool with_distance = true;
  bool with_s2 = true;
};

struct JobEvent {
  enum class Kind : std::uint8_t {
    accepted,  // submitted and queued
    started,   // first slice began
    progress,  // a ProgressSample (extract/metrics phases)
    leg,       // a generate leg completed; attempts/budget are per chain
    done,      // terminal; `state` is done/failed/interrupted
  };
  Kind kind = Kind::accepted;
  std::uint64_t job = 0;
  JobState state = JobState::queued;
  std::uint64_t attempts = 0;
  std::uint64_t budget = 0;
  std::uint32_t lane = 0;
  std::string text;  // failure message on done/failed
};

/// Terminal snapshot of a job, from status() or wait().
struct JobInfo {
  std::uint64_t id = 0;
  JobKind kind = JobKind::extract;
  JobState state = JobState::queued;
  std::string error;
  /// extract: published files + cache disposition.
  std::vector<std::string> files;
  bool cache_hit = false;
  /// generate: progress + result.
  std::uint64_t legs_done = 0;
  std::uint64_t attempts_done = 0;
  std::uint64_t budget = 0;
  double best_distance = 0.0;
  /// metrics result (valid when kind == metrics and state == done).
  metrics::ScalarMetrics scalar{};
};

struct ServerOptions {
  /// Dispatch threads.  Default 1 = fully deterministic dispatch; the
  /// fairness and cache-determinism tests depend on it.
  std::size_t workers = 1;
  /// Directory for the content-addressed dK cache (created if absent).
  std::string cache_dir = ".orbis-cache";
  FairQueueOptions fairness{};
  /// Event stream; called from worker AND submitting threads.
  std::function<void(const JobEvent&)> on_event;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  /// Drains nothing: closes the queue, joins workers (the slice each
  /// worker is on completes; queued jobs are dropped silently).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Validates and enqueues; returns the job id.  Throws
  /// std::invalid_argument on a malformed request (unknown d, empty
  /// paths) — nothing is enqueued then.
  std::uint64_t submit(JobRequest request);

  /// Requests cancellation; returns false for unknown ids.  Idempotent;
  /// a no-op on jobs already terminal.
  bool cancel(std::uint64_t id);

  /// Point-in-time snapshot; throws std::invalid_argument for unknown
  /// ids.
  JobInfo status(std::uint64_t id) const;

  /// Blocks until the job is terminal, then returns its snapshot.
  JobInfo wait(std::uint64_t id);

  /// Stops accepting dispatches and joins the workers (idempotent; the
  /// destructor calls it).
  void shutdown();

  DkCache& cache() noexcept { return *cache_; }

 private:
  struct Job;

  void worker_loop();
  void run_slice(Job& job);
  void run_extract(Job& job);
  void run_metrics(Job& job);
  void run_generate_leg(Job& job);
  void finish(Job& job, JobState state, const std::string& error);
  void emit(const JobEvent& event) const;

  ServerOptions options_;
  std::unique_ptr<DkCache> cache_;
  FairQueue queue_;

  mutable std::mutex mutex_;  // job table + per-job mutable state
  std::condition_variable done_cv_;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 1;

  std::vector<std::thread> workers_;
  bool shut_down_ = false;
};

}  // namespace orbis::svc
