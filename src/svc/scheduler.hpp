// Weighted-FIFO fair scheduling for the topology service
// (docs/service.md, "Fairness").
//
// The service runs two very different workloads through one worker
// pool: INTERACTIVE jobs (extracts, metrics — seconds each, a human
// waiting) and BATCH jobs (targeting generates — minutes to hours,
// sliced into checkpoint legs by the server).  Plain FIFO lets one
// submitted generate occupy every worker until it finishes; strict
// priority starves generates forever under a steady extract stream.
//
// FairQueue implements stride scheduling over job classes: class c has
// weight w_c and a virtual pass counter advanced by 1/w_c per slice
// dispatched from it; pop() serves the non-empty class with the
// smallest pass (ties to the interactive class), FIFO within the
// class.  Consequences, both load-bearing for the service tests:
//
//   * with both classes backlogged, dispatch converges to the weight
//     ratio — at the default 4:1, at most 4 consecutive interactive
//     slices between batch slices, so a generate's WORST-CASE delay
//     per leg is bounded by 4 interactive slices (the starvation-bound
//     test pins this);
//   * a class that was idle re-joins at the current virtual time
//     (pass clamped up on push-to-empty), so sleeping never banks
//     credit it could later spend as a monopolizing burst.
//
// The queue carries opaque uint64 job ids; the server maps them back
// to jobs.  Thread-safe; pop() blocks until an item or close().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

namespace orbis::svc {

enum class JobClass : std::uint8_t { interactive = 0, batch = 1 };
inline constexpr std::size_t kJobClassCount = 2;

struct FairQueueOptions {
  /// Dispatch weight per class; higher = more slices under contention.
  double interactive_weight = 4.0;
  double batch_weight = 1.0;
};

class FairQueue {
 public:
  explicit FairQueue(FairQueueOptions options = {});

  /// Enqueues a job slice.  Never blocks.  No-op after close().
  void push(JobClass cls, std::uint64_t id);

  /// Dequeues the next slice per the stride policy.  Blocks while
  /// empty; returns false once closed AND drained.
  bool pop(std::uint64_t& id);

  /// Wakes all poppers; pending items still drain, new pushes drop.
  void close();

  std::size_t size() const;

 private:
  FairQueueOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::uint64_t> queues_[kJobClassCount];
  double pass_[kJobClassCount] = {0.0, 0.0};
  double global_pass_ = 0.0;  // virtual time of the last dispatch
  bool closed_ = false;
};

}  // namespace orbis::svc
