#include "svc/scheduler.hpp"

#include "util/check.hpp"

namespace orbis::svc {

namespace {

double weight_of(const FairQueueOptions& options, std::size_t cls) {
  return cls == static_cast<std::size_t>(JobClass::interactive)
             ? options.interactive_weight
             : options.batch_weight;
}

}  // namespace

FairQueue::FairQueue(FairQueueOptions options) : options_(options) {
  util::expects(options_.interactive_weight > 0.0 &&
                    options_.batch_weight > 0.0,
                "FairQueue: class weights must be positive");
}

void FairQueue::push(JobClass cls, std::uint64_t id) {
  const auto index = static_cast<std::size_t>(cls);
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  if (queues_[index].empty()) {
    // Re-join at the current virtual time: an idle class never banks
    // credit (see header).
    if (pass_[index] < global_pass_) pass_[index] = global_pass_;
  }
  queues_[index].push_back(id);
  cv_.notify_one();
}

bool FairQueue::pop(std::uint64_t& id) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] {
    if (closed_) return true;
    for (const auto& queue : queues_) {
      if (!queue.empty()) return true;
    }
    return false;
  });

  std::size_t best = kJobClassCount;  // sentinel: nothing runnable
  for (std::size_t cls = 0; cls < kJobClassCount; ++cls) {
    if (queues_[cls].empty()) continue;
    // Strict < keeps ties with the earlier (interactive) class.
    if (best == kJobClassCount || pass_[cls] < pass_[best]) best = cls;
  }
  if (best == kJobClassCount) return false;  // closed and drained

  id = queues_[best].front();
  queues_[best].pop_front();
  pass_[best] += 1.0 / weight_of(options_, best);
  global_pass_ = pass_[best];
  return true;
}

void FairQueue::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  cv_.notify_all();
}

std::size_t FairQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue.size();
  return total;
}

}  // namespace orbis::svc
