// The topology service's line-delimited JSON wire format
// (docs/service.md, "Protocol").
//
// Requests are FLAT JSON objects, one per line — string / number /
// boolean / null values only, no nesting.  That restriction is what
// keeps this parser ~150 lines instead of a JSON DOM: the protocol was
// designed flat (every request field is scalar), so the parser enforces
// it rather than half-supporting nesting.  Responses are emitted
// through obs::json::Writer (compact mode), the same serializer the
// run reports use, so escaping lives in one place for both directions.
//
// Error contract: malformed lines throw orbis::ParseError with a
// column position; the server turns that into an `error` event and
// keeps reading (one bad request must not kill the session).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace orbis::svc::wire {

struct Value {
  enum class Kind : std::uint8_t { string, number, boolean, null };
  Kind kind = Kind::null;
  std::string text;     // Kind::string
  double number = 0.0;  // Kind::number
  bool boolean = false;
};

using Object = std::map<std::string, Value>;

/// Parses one request line.  Throws orbis::ParseError on malformed
/// JSON, nested containers, or duplicate keys.
Object parse_flat_object(std::string_view line);

/// Typed field access.  `get_*` returns the fallback when the key is
/// absent; `require_string` throws orbis::ParseError when missing.
/// Type mismatches always throw (a request that says `"d":"three"`
/// is malformed, not defaulted).
std::string require_string(const Object& object, const std::string& key);
std::string get_string(const Object& object, const std::string& key,
                       const std::string& fallback);
std::int64_t get_int(const Object& object, const std::string& key,
                     std::int64_t fallback);
double get_double(const Object& object, const std::string& key,
                  double fallback);
bool get_bool(const Object& object, const std::string& key, bool fallback);

}  // namespace orbis::svc::wire
