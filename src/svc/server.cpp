#include "svc/server.hpp"

#include <sys/stat.h>

#include <atomic>
#include <utility>

#include "gen/checkpoint.hpp"
#include "gen/matching.hpp"
#include "io/dk_serialization.hpp"
#include "io/edge_list.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"

namespace orbis::svc {

const char* to_string(JobKind kind) noexcept {
  switch (kind) {
    case JobKind::extract:
      return "extract";
    case JobKind::generate:
      return "generate";
    case JobKind::metrics:
      return "metrics";
  }
  return "?";
}

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::queued:
      return "queued";
    case JobState::running:
      return "running";
    case JobState::done:
      return "done";
    case JobState::failed:
      return "failed";
    case JobState::interrupted:
      return "interrupted";
  }
  return "?";
}

namespace {

/// Forwards extraction/metrics progress samples as job events.
class EventProgressSink : public obs::ProgressSink {
 public:
  EventProgressSink(std::function<void(const JobEvent&)> emit,
                    std::uint64_t job)
      : emit_(std::move(emit)), job_(job) {}

  void report(std::uint32_t lane, const obs::ProgressSample& sample) override {
    if (!emit_) return;
    JobEvent event;
    event.kind = JobEvent::Kind::progress;
    event.job = job_;
    event.state = JobState::running;
    event.attempts = sample.attempts;
    event.budget = sample.budget;
    event.lane = lane;
    emit_(event);
  }

 private:
  std::function<void(const JobEvent&)> emit_;
  std::uint64_t job_;
};

}  // namespace

struct Server::Job {
  std::uint64_t id = 0;
  JobRequest request;
  JobClass cls = JobClass::interactive;
  std::atomic<bool> cancelled{false};
  util::StopSource stop;
  obs::Registry registry;  // per-job scrape (RunContext::metrics)
  std::unique_ptr<EventProgressSink> progress;
  JobInfo info;  // guarded by Server::mutex_ once workers run
  bool started = false;

  /// Generate-job continuation state; touched only by the worker
  /// currently holding the job's slice (one slice in flight at a time).
  struct GenerateState {
    dk::DkDistributions target;
    gen::TargetingOptions targeting;
    gen::MultiChainOptions chains{};
    std::uint64_t checkpoint_every = 0;
    int stage = 2;  // currently targeted series level: 2, then 3
    gen::RunCheckpoint run;
    util::Rng rng{1};  // master seeding stream across stages
  };
  std::unique_ptr<GenerateState> generate;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)), queue_(options_.fairness) {
  util::expects(options_.workers >= 1, "Server: workers must be >= 1");
  util::expects(!options_.cache_dir.empty(),
                "Server: cache_dir must not be empty");
  // EEXIST is the common case (a prior server's cache — that is the
  // point of content addressing); any other failure surfaces on first
  // use as an IoError from the cache writes.
  ::mkdir(options_.cache_dir.c_str(), 0777);
  cache_ = std::make_unique<DkCache>(options_.cache_dir);
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void Server::emit(const JobEvent& event) const {
  if (options_.on_event) options_.on_event(event);
}

std::uint64_t Server::submit(JobRequest request) {
  util::expects(!request.input_path.empty(),
                "Server::submit: input_path must not be empty");
  switch (request.kind) {
    case JobKind::extract:
      util::expects(request.d >= 1 && request.d <= 3,
                    "Server::submit: extract d must be in [1,3]");
      util::expects(!request.output.empty(),
                    "Server::submit: extract needs an output prefix");
      break;
    case JobKind::generate:
      util::expects(request.d == 2 || request.d == 3,
                    "Server::submit: generate d must be 2 or 3");
      util::expects(!request.output.empty(),
                    "Server::submit: generate needs an output path");
      break;
    case JobKind::metrics:
      break;
  }

  auto job = std::make_unique<Job>();
  Job* raw = job.get();
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    job->id = id;
    job->request = std::move(request);
    job->cls = job->request.kind == JobKind::generate ? JobClass::batch
                                                      : JobClass::interactive;
    // The server owns the job's execution context wiring: its stop
    // source, its event-forwarding progress sink, its registry.
    job->request.ctx.stop = job->stop.token();
    job->progress = std::make_unique<EventProgressSink>(
        [this](const JobEvent& event) { emit(event); }, id);
    job->request.ctx.progress = job->progress.get();
    job->request.ctx.metrics = &job->registry;
    job->info.id = id;
    job->info.kind = job->request.kind;
    job->info.state = JobState::queued;
    jobs_.emplace(id, std::move(job));
  }

  JobEvent accepted;
  accepted.kind = JobEvent::Kind::accepted;
  accepted.job = id;
  accepted.state = JobState::queued;
  emit(accepted);
  queue_.push(raw->cls, id);
  return id;
}

bool Server::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  it->second->cancelled.store(true, std::memory_order_relaxed);
  it->second->stop.request_stop();
  return true;
}

JobInfo Server::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw std::invalid_argument("Server::status: unknown job id " +
                                std::to_string(id));
  }
  return it->second->info;
}

JobInfo Server::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw std::invalid_argument("Server::wait: unknown job id " +
                                std::to_string(id));
  }
  Job* job = it->second.get();
  done_cv_.wait(lock, [&] {
    return job->info.state == JobState::done ||
           job->info.state == JobState::failed ||
           job->info.state == JobState::interrupted;
  });
  return job->info;
}

void Server::worker_loop() {
  std::uint64_t id = 0;
  while (queue_.pop(id)) {
    Job* job = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      job = it->second.get();
    }
    run_slice(*job);
  }
}

void Server::finish(Job& job, JobState state, const std::string& error) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.info.state = state;
    job.info.error = error;
  }
  done_cv_.notify_all();
  JobEvent event;
  event.kind = JobEvent::Kind::done;
  event.job = job.id;
  event.state = state;
  event.text = error;
  emit(event);
}

void Server::run_slice(Job& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!job.started) {
      job.started = true;
      job.info.state = JobState::running;
      JobEvent event;
      event.kind = JobEvent::Kind::started;
      event.job = job.id;
      event.state = JobState::running;
      emit(event);
    }
  }
  // A cancel that lands while the job sits in the queue resolves here,
  // without paying for any setup.
  if (job.cancelled.load(std::memory_order_relaxed)) {
    finish(job, JobState::interrupted, "");
    return;
  }
  try {
    switch (job.request.kind) {
      case JobKind::extract:
        run_extract(job);
        break;
      case JobKind::metrics:
        run_metrics(job);
        break;
      case JobKind::generate:
        run_generate_leg(job);
        break;
    }
  } catch (const InterruptedError&) {
    finish(job, JobState::interrupted, "");
  } catch (const std::exception& error) {
    finish(job, JobState::failed, error.what());
  }
}

void Server::run_extract(Job& job) {
  const obs::Span span("svc.job.extract");
  io::StreamingExtractOptions options;
  options.extractor.assume_simple = job.request.assume_simple;
  options.apply(job.request.ctx);
  const DkCache::Outcome outcome = cache_->extract_to(
      job.request.input_path, job.request.d, job.request.output, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.info.files = outcome.files;
    job.info.cache_hit = outcome.hit;
  }
  finish(job, JobState::done, "");
}

void Server::run_metrics(Job& job) {
  const obs::Span span("svc.job.metrics");
  const io::EdgeListReadResult loaded =
      io::read_edge_list_file(job.request.input_path);
  metrics::SummaryOptions options;
  options.with_spectrum = job.request.with_spectrum;
  options.with_distance = job.request.with_distance;
  options.with_s2 = job.request.with_s2;
  const metrics::ScalarMetrics scalar =
      metrics::compute_scalar_metrics(loaded.graph, options, job.request.ctx);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.info.scalar = scalar;
  }
  finish(job, JobState::done, "");
}

void Server::run_generate_leg(Job& job) {
  const obs::Span span("svc.job.generate_leg");
  const JobRequest& request = job.request;
  if (!job.generate) {
    // First slice: read the target distributions, bootstrap the 1K
    // start graph, build the stage-2 checkpointed run.
    auto state = std::make_unique<Job::GenerateState>();
    state->target.degree = io::read_1k_file(request.input_path + ".1k");
    state->target.joint = io::read_2k_file(request.input_path + ".2k");
    if (request.d >= 3) {
      state->target.three_k = io::read_3k_file(request.input_path + ".3k");
    }
    state->targeting.temperature = request.temperature;
    if (request.attempts_per_edge > 0) {
      state->targeting.attempts_per_edge = request.attempts_per_edge;
    }
    state->targeting.attempts = request.attempts;
    state->targeting.apply(request.ctx);
    // Batch jobs report at leg granularity (the `leg` events); per-
    // attempt samples through the event sink would flood the wire.
    state->targeting.progress = nullptr;
    state->chains.chains = request.ctx.chains;
    state->rng = request.ctx.make_rng();

    Graph start;
    {
      const obs::Span seed_span("svc.generate.seed_1k");
      start = gen::matching_1k(state->target.degree, state->rng);
    }
    const std::uint64_t budget =
        request.attempts > 0
            ? request.attempts
            : static_cast<std::uint64_t>(state->targeting.attempts_per_edge) *
                  start.num_edges();
    state->checkpoint_every =
        request.checkpoint_every > 0
            ? request.checkpoint_every
            : (budget > 8 ? budget / 8 : std::uint64_t{1});
    state->run = gen::make_2k_run(start, state->targeting, state->chains,
                                  state->checkpoint_every, state->rng);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job.info.budget = state->run.budget;
    }
    job.generate = std::move(state);
  }

  Job::GenerateState& state = *job.generate;
  // One checkpoint leg per slice: the first boundary callback requests
  // stop on the slice token, so the driver returns right there and the
  // job re-queues behind whatever interactive work arrived meanwhile.
  job.stop.reset();
  if (job.cancelled.load(std::memory_order_relaxed)) {
    // cancel() raced the reset; re-arm the stop it intended.
    job.stop.request_stop();
  }
  gen::CheckpointOptions checkpointing;
  checkpointing.stop = job.stop.token();
  checkpointing.on_checkpoint = [this, &job](const gen::RunCheckpoint& run) {
    job.stop.request_stop();
    std::uint64_t legs = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      legs = ++job.info.legs_done;
      job.info.attempts_done =
          run.chains.empty() ? 0 : run.chains[0].attempts_done;
    }
    JobEvent event;
    event.kind = JobEvent::Kind::leg;
    event.job = job.id;
    event.state = JobState::running;
    event.attempts = legs;
    event.budget = run.checkpoint_every > 0
                       ? (run.budget + run.checkpoint_every - 1) /
                             run.checkpoint_every
                       : 1;
    emit(event);
  };

  gen::CheckpointedResult result =
      state.stage == 2
          ? gen::run_checkpointed_2k(state.run, state.target.joint,
                                     state.targeting, checkpointing)
          : gen::run_checkpointed_3k(state.run, state.target.three_k,
                                     state.targeting, checkpointing);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.info.best_distance = result.best_distance;
    job.info.attempts_done = result.attempts_done;
  }

  if (job.cancelled.load(std::memory_order_relaxed)) {
    finish(job, JobState::interrupted, "");
    return;
  }
  // Our own slice-stop makes `interrupted` the EXPECTED result of a
  // mid-run leg; the stage is over only when the driver ran out of
  // budget (finished) or returned on its own (stop_distance reached).
  const bool stage_complete = state.run.finished() || !result.interrupted;
  if (!stage_complete) {
    queue_.push(job.cls, job.id);
    return;
  }
  if (state.stage == 2 && request.d == 3) {
    const obs::Span stage_span("svc.generate.stage_3k");
    state.stage = 3;
    state.run = gen::make_3k_run(result.graph, state.targeting, state.chains,
                                 state.checkpoint_every, state.rng);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job.info.budget = state.run.budget;
    }
    queue_.push(job.cls, job.id);
    return;
  }
  io::write_edge_list_file(request.output, result.graph);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.info.files = {request.output};
  }
  finish(job, JobState::done, "");
}

}  // namespace orbis::svc
