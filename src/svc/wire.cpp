#include "svc/wire.hpp"

#include <cctype>
#include <cstdlib>

#include "util/errors.hpp"

namespace orbis::svc::wire {

namespace {

/// Cursor over one request line; reports positions 1-based.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return eof() ? '\0' : text_[pos_]; }
  char take() { return eof() ? '\0' : text_[pos_++]; }

  void expect(char wanted) {
    if (peek() != wanted) {
      fail(std::string("expected '") + wanted + "'");
    }
    ++pos_;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("wire: " + what + " at column " +
                     std::to_string(pos_ + 1));
  }

  std::size_t pos() const { return pos_; }
  std::string_view rest() const { return text_.substr(pos_); }
  void advance(std::size_t n) { pos_ += n; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string parse_string(Cursor& cursor) {
  cursor.expect('"');
  std::string out;
  while (true) {
    if (cursor.eof()) cursor.fail("unterminated string");
    const char c = cursor.take();
    if (c == '"') return out;
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (cursor.eof()) cursor.fail("unterminated escape");
    const char escape = cursor.take();
    switch (escape) {
      case '"':
        out.push_back('"');
        break;
      case '\\':
        out.push_back('\\');
        break;
      case '/':
        out.push_back('/');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 'b':
        out.push_back('\b');
        break;
      case 'f':
        out.push_back('\f');
        break;
      case 'u': {
        // Paths and tags on this wire are ASCII in practice; decode the
        // BMP escape to UTF-8 so a conforming client round-trips.
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          if (cursor.eof()) cursor.fail("truncated \\u escape");
          const char h = cursor.take();
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            cursor.fail("bad hex digit in \\u escape");
          }
        }
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default:
        cursor.fail("unknown escape");
    }
  }
}

Value parse_scalar(Cursor& cursor) {
  cursor.skip_ws();
  Value value;
  const char c = cursor.peek();
  if (c == '"') {
    value.kind = Value::Kind::string;
    value.text = parse_string(cursor);
    return value;
  }
  if (c == '{' || c == '[') {
    cursor.fail("nested containers are not part of this protocol");
  }
  const std::string_view rest = cursor.rest();
  if (rest.substr(0, 4) == "true") {
    value.kind = Value::Kind::boolean;
    value.boolean = true;
    cursor.advance(4);
    return value;
  }
  if (rest.substr(0, 5) == "false") {
    value.kind = Value::Kind::boolean;
    value.boolean = false;
    cursor.advance(5);
    return value;
  }
  if (rest.substr(0, 4) == "null") {
    value.kind = Value::Kind::null;
    cursor.advance(4);
    return value;
  }
  // Number: delegate validation to strtod over the remaining text.
  const std::string tail(rest);
  char* end = nullptr;
  const double parsed = std::strtod(tail.c_str(), &end);
  if (end == tail.c_str()) cursor.fail("expected a JSON value");
  value.kind = Value::Kind::number;
  value.number = parsed;
  cursor.advance(static_cast<std::size_t>(end - tail.c_str()));
  return value;
}

}  // namespace

Object parse_flat_object(std::string_view line) {
  Cursor cursor(line);
  cursor.skip_ws();
  cursor.expect('{');
  Object object;
  cursor.skip_ws();
  if (cursor.peek() == '}') {
    cursor.take();
  } else {
    while (true) {
      cursor.skip_ws();
      std::string key = parse_string(cursor);
      cursor.skip_ws();
      cursor.expect(':');
      Value value = parse_scalar(cursor);
      if (!object.emplace(std::move(key), std::move(value)).second) {
        cursor.fail("duplicate key");
      }
      cursor.skip_ws();
      const char next = cursor.take();
      if (next == '}') break;
      if (next != ',') cursor.fail("expected ',' or '}'");
    }
  }
  cursor.skip_ws();
  if (!cursor.eof()) cursor.fail("trailing content after object");
  return object;
}

std::string require_string(const Object& object, const std::string& key) {
  const auto it = object.find(key);
  if (it == object.end()) {
    throw ParseError("wire: missing required field \"" + key + "\"");
  }
  if (it->second.kind != Value::Kind::string) {
    throw ParseError("wire: field \"" + key + "\" must be a string");
  }
  return it->second.text;
}

std::string get_string(const Object& object, const std::string& key,
                       const std::string& fallback) {
  const auto it = object.find(key);
  if (it == object.end()) return fallback;
  if (it->second.kind != Value::Kind::string) {
    throw ParseError("wire: field \"" + key + "\" must be a string");
  }
  return it->second.text;
}

std::int64_t get_int(const Object& object, const std::string& key,
                     std::int64_t fallback) {
  const auto it = object.find(key);
  if (it == object.end()) return fallback;
  if (it->second.kind != Value::Kind::number) {
    throw ParseError("wire: field \"" + key + "\" must be a number");
  }
  return static_cast<std::int64_t>(it->second.number);
}

double get_double(const Object& object, const std::string& key,
                  double fallback) {
  const auto it = object.find(key);
  if (it == object.end()) return fallback;
  if (it->second.kind != Value::Kind::number) {
    throw ParseError("wire: field \"" + key + "\" must be a number");
  }
  return it->second.number;
}

bool get_bool(const Object& object, const std::string& key, bool fallback) {
  const auto it = object.find(key);
  if (it == object.end()) return fallback;
  if (it->second.kind != Value::Kind::boolean) {
    throw ParseError("wire: field \"" + key + "\" must be a boolean");
  }
  return it->second.boolean;
}

}  // namespace orbis::svc::wire
