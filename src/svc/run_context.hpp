// The unified entry-point contract (docs/service.md, "RunContext").
//
// Before this header existed, every long-running entry point grew its
// own copies of the same cross-cutting knobs: GenerateOptions carried a
// chain count, TargetingOptions and RandomizeOptions each carried
// workers/stop/progress, the CLI threaded a seed by hand, and anything
// new (the topology service, batch drivers) had to re-plumb all of
// them.  RunContext is the one struct that carries a run's execution
// context:
//
//   seed              — the run's RNG seed; make_rng() is the ONLY
//                       place a context turns into a generator, so two
//                       calls with equal contexts draw identical streams
//   chains            — multichain fan-out (0 = autotune, one per core)
//   workers           — speculative evaluation workers (1 = serial)
//   memory_budget_mb  — objective-backend budget (docs/scaling.md)
//   stop              — cooperative cancellation (util/stop_token.hpp);
//                       polled at the same batch boundaries as always
//   progress          — live progress sink (obs/progress.hpp)
//   metrics           — metrics registry; null = obs::Registry::global()
//
// Entry points accept a RunContext alongside their algorithm-specific
// options (gen::GenerateOptions keeps method/temperature/budget — those
// describe WHAT to compute; the context describes HOW this particular
// run executes).  The options structs keep their historical fields as
// one-release back-compat shims: `options.apply(ctx)` copies the
// context over them, and the context-taking overloads do exactly that,
// so a context-driven call and a hand-filled legacy call are
// bit-identical.
//
// Deprecation policy: the pre-RunContext entry points and direct writes
// to the duplicated fields keep compiling this release.  Building with
// -DORBIS_WARN_DEPRECATED surfaces [[deprecated]] at the old signatures
// so downstreams can find every call site before the shims go away.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "util/rng.hpp"
#include "util/stop_token.hpp"

#if defined(ORBIS_WARN_DEPRECATED)
#define ORBIS_DEPRECATED(msg) [[deprecated(msg)]]
#else
#define ORBIS_DEPRECATED(msg)
#endif

namespace orbis::svc {

struct RunContext {
  /// RNG seed; the context form of the CLI's --seed.  Entry points that
  /// take a RunContext derive their generator via make_rng(), never
  /// from an ambient source, so results are a pure function of the
  /// context plus the algorithm options.
  std::uint64_t seed = 1;

  /// Multichain fan-out for targeting stages; 0 = autotune (one chain
  /// per available core, gen::default_chain_count).
  std::size_t chains = 0;

  /// Speculative evaluation workers for the 3K paths; 1 = serial,
  /// 0 = all cores (docs/parallel.md).
  std::size_t workers = 1;

  /// 2K objective-backend budget in MB (docs/scaling.md).
  std::size_t memory_budget_mb = 512;

  /// Cooperative cancellation; default token never stops.
  util::StopToken stop{};

  /// Live progress observer; null = silent.  Sinks only read samples,
  /// so chains are bit-identical with or without one.
  obs::ProgressSink* progress = nullptr;

  /// Metrics registry for run-scoped instruments; null = the process
  /// registry.  Library counters publish to the global registry either
  /// way (they are process totals); service front ends use this to give
  /// each job its own scrape.
  obs::Registry* metrics = nullptr;

  /// The run's generator.  Deliberately a value: every caller that
  /// needs continuation state (multi-stage pipelines) holds the Rng it
  /// made and passes it down, exactly as the legacy API did.
  util::Rng make_rng() const noexcept { return util::Rng(seed); }

  /// Resolved registry (never null).
  obs::Registry& registry() const noexcept {
    return metrics != nullptr ? *metrics : obs::Registry::global();
  }
};

}  // namespace orbis::svc
