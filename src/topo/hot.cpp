#include "topo/hot.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace orbis::topo {

namespace {

/// True if adding (u,v) would close a triangle (u,v share a neighbor).
bool would_close_triangle(const Graph& g, NodeId u, NodeId v) {
  const auto& smaller =
      g.degree(u) <= g.degree(v) ? g.neighbors(u) : g.neighbors(v);
  const NodeId other = g.degree(u) <= g.degree(v) ? v : u;
  for (const NodeId w : smaller) {
    if (g.has_edge(w, other)) return true;
  }
  return false;
}

/// Largest-remainder allocation of `total` leaves over Zipf weights
/// (i+1)^-zipf, each bucket getting at least one.
std::vector<std::size_t> zipf_allocation(std::size_t buckets,
                                         std::size_t total, double zipf) {
  util::expects(total >= buckets, "hot_topology: fewer leaves than routers");
  std::vector<double> weights(buckets);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < buckets; ++i) {
    weights[i] = std::pow(static_cast<double>(i + 1), -zipf);
    weight_sum += weights[i];
  }
  std::vector<std::size_t> allocation(buckets, 1);
  std::size_t allocated = buckets;
  std::vector<std::pair<double, std::size_t>> remainders(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    const double ideal =
        weights[i] / weight_sum * static_cast<double>(total);
    const auto extra = static_cast<std::size_t>(
        std::max(0.0, std::floor(ideal - 1.0)));
    allocation[i] += extra;
    allocated += extra;
    remainders[i] = {ideal - std::floor(ideal), i};
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t r = 0; allocated < total; ++r) {
    allocation[remainders[r % buckets].second] += 1;
    ++allocated;
  }
  while (allocated > total) {  // defensive: trim from the smallest buckets
    for (std::size_t i = buckets; i-- > 0 && allocated > total;) {
      if (allocation[i] > 1) {
        --allocation[i];
        --allocated;
      }
    }
  }
  return allocation;
}

}  // namespace

Graph hot_topology(const HotOptions& options, util::Rng& rng) {
  const NodeId num_core = options.num_core;
  const NodeId num_gateways = num_core * options.gateways_per_core;
  const NodeId num_access = num_gateways * options.access_per_gateway;
  const NodeId routers = num_core + num_gateways + num_access;
  util::expects(num_core >= 4, "hot_topology: need at least 4 core nodes");
  util::expects(options.num_nodes > routers + num_access,
                "hot_topology: num_nodes too small for the router tiers");

  const std::size_t num_leaves = options.num_nodes - routers;
  Graph g(options.num_nodes);

  // Tier 0: core ring + non-triangle chords (skip >= 2 positions).
  for (NodeId i = 0; i < num_core; ++i) {
    g.add_edge(i, (i + 1) % num_core);
  }
  for (NodeId chord = 0; chord < options.core_chords; ++chord) {
    const NodeId from = static_cast<NodeId>(
        (chord * num_core) / std::max<NodeId>(1, options.core_chords));
    const NodeId to = (from + num_core / 2) % num_core;
    if (from != to && !g.has_edge(from, to) &&
        !would_close_triangle(g, from, to)) {
      g.add_edge(from, to);
    }
  }

  // Tier 1: gateways, one uplink each.
  const NodeId gateway_base = num_core;
  for (NodeId gw = 0; gw < num_gateways; ++gw) {
    g.add_edge(gateway_base + gw, gw / options.gateways_per_core);
  }

  // Tier 2: access routers, one uplink each.
  const NodeId access_base = gateway_base + num_gateways;
  for (NodeId ar = 0; ar < num_access; ++ar) {
    g.add_edge(access_base + ar,
               gateway_base + ar / options.access_per_gateway);
  }

  // Tier 3: end hosts with Zipf-skewed fanout: a few access routers are
  // high-degree aggregation points, most serve a handful of hosts.
  const auto fanout =
      zipf_allocation(num_access, num_leaves, options.fanout_zipf);
  NodeId next_leaf = access_base + num_access;
  for (NodeId ar = 0; ar < num_access; ++ar) {
    for (std::size_t leaf = 0; leaf < fanout[ar]; ++leaf) {
      g.add_edge(access_base + ar, next_leaf++);
    }
  }
  util::ensures(next_leaf == options.num_nodes,
                "hot_topology: leaf allocation mismatch");

  // Redundancy links up to the edge budget, never closing a triangle so
  // that clustering stays ~0 like the real HOT graph.
  std::size_t guard = 0;
  const std::size_t guard_limit = 200 * options.num_edges + 1000;
  while (g.num_edges() < options.num_edges && guard++ < guard_limit) {
    const bool gateway_side = rng.bernoulli(0.5);
    if (gateway_side) {
      // Gateway dual-homing to a second core node.
      const NodeId gw =
          gateway_base + static_cast<NodeId>(rng.uniform(num_gateways));
      const NodeId core = static_cast<NodeId>(rng.uniform(num_core));
      if (!g.has_edge(gw, core) && !would_close_triangle(g, gw, core)) {
        g.add_edge(gw, core);
      }
    } else {
      // Access router dual-homing to a second gateway.
      const NodeId ar =
          access_base + static_cast<NodeId>(rng.uniform(num_access));
      const NodeId gw =
          gateway_base + static_cast<NodeId>(rng.uniform(num_gateways));
      if (!g.has_edge(ar, gw) && !would_close_triangle(g, ar, gw)) {
        g.add_edge(ar, gw);
      }
    }
  }
  return g;
}

}  // namespace orbis::topo
