// Synthetic AS-level Internet topologies — the stand-in for the paper's
// measured skitter / BGP / WHOIS graphs (March 2004), which are no longer
// distributed in that form.  See DESIGN.md §3 for the substitution
// argument.
//
// Construction: a deterministic power-law degree sequence (inverse-CDF
// quantile sampling, exponent γ), wired into a simple connected graph by
// loop-repaired matching (exact 1K), then clustered up to the preset's
// C̄ via 2K-preserving clustering-maximizing rewiring.  Heavy-tailed
// degree sequences make the result naturally disassortative (r ≈ -0.24
// for the skitter preset, matching the measured value without tuning).
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace orbis::topo {

struct AsLevelOptions {
  NodeId num_nodes = 9204;          // skitter: 9204 nodes / 28959 edges
  double gamma = 2.1;               // power-law exponent
  std::size_t min_degree = 1;
  std::size_t max_degree_cap = 2400;
  /// Mean clustering the maximizing rewiring drives toward.  This is a
  /// ceiling, not the realized value: greedy clustering maximization
  /// pays part of its gains in small clique components which the
  /// reconnection pass re-attaches (breaking their triangles), so the
  /// connected result typically lands at ~50-70% of this target.  The
  /// realized values per preset are recorded in EXPERIMENTS.md; the
  /// paper's convergence-shape results do not depend on the absolute C̄
  /// of the input dataset.
  double clustering_target = 0.46;
  std::size_t clustering_attempts_per_edge = 120;
};

enum class AsPreset {
  skitter,  // CAIDA skitter traceroute graph scale
  bgp,      // RouteViews BGP table graph scale
  whois,    // RIPE WHOIS graph scale (denser, more clustered)
};

AsLevelOptions as_preset(AsPreset preset);

/// Deterministic power-law degree sequence for the given options
/// (quantile-spaced, even total); exposed for tests and reuse.
std::vector<std::size_t> power_law_degree_sequence(
    const AsLevelOptions& options);

/// Build a synthetic AS-level topology; returns the GCC.
Graph as_level_topology(const AsLevelOptions& options, util::Rng& rng);

inline Graph as_level_topology(AsPreset preset, util::Rng& rng) {
  return as_level_topology(as_preset(preset), rng);
}

}  // namespace orbis::topo
