#include "topo/as_level.hpp"

#include <algorithm>
#include <cmath>

#include "core/degree_distribution.hpp"
#include "gen/matching.hpp"
#include "gen/rewiring.hpp"
#include "graph/algorithms.hpp"
#include "util/check.hpp"

namespace orbis::topo {

AsLevelOptions as_preset(AsPreset preset) {
  AsLevelOptions options;
  switch (preset) {
    case AsPreset::skitter:
      // 9204 nodes / 28959 edges, kbar 6.29, C 0.46, r -0.24 (paper §5).
      // The quantile construction with a hard degree cap has a lighter
      // tail than the measured CCDF fit (gamma ~ 2.1), so the effective
      // exponent is tuned to reproduce kbar = 6.29 at this n.
      options.num_nodes = 9204;
      options.gamma = 1.93;
      options.max_degree_cap = 2400;
      options.clustering_target = 0.46;
      break;
    case AsPreset::bgp:
      // RouteViews BGP: larger and sparser than skitter; the paper
      // reports results qualitatively identical to skitter.
      options.num_nodes = 17446;
      options.gamma = 2.02;
      options.max_degree_cap = 2500;
      options.clustering_target = 0.39;
      break;
    case AsPreset::whois:
      // RIPE WHOIS: denser, more clustered, in between skitter and HOT.
      options.num_nodes = 7485;
      options.gamma = 1.78;
      options.max_degree_cap = 1100;
      options.clustering_target = 0.49;
      break;
  }
  return options;
}

std::vector<std::size_t> power_law_degree_sequence(
    const AsLevelOptions& options) {
  util::expects(options.num_nodes >= 4, "power_law_degree_sequence: n < 4");
  util::expects(options.gamma > 1.0,
                "power_law_degree_sequence: gamma must exceed 1");
  util::expects(options.min_degree >= 1 &&
                    options.min_degree <= options.max_degree_cap,
                "power_law_degree_sequence: bad degree bounds");

  // Discrete pmf p(k) ∝ k^-γ on [min_degree, max_degree_cap].
  const std::size_t kmin = options.min_degree;
  const std::size_t kmax = options.max_degree_cap;
  std::vector<double> cumulative(kmax + 1, 0.0);
  double total = 0.0;
  for (std::size_t k = kmin; k <= kmax; ++k) {
    total += std::pow(static_cast<double>(k), -options.gamma);
    cumulative[k] = total;
  }

  // Quantile-spaced inverse-CDF sampling: deterministic, reproduces the
  // tail (a handful of large hubs) without Monte-Carlo noise.
  const auto n = static_cast<std::size_t>(options.num_nodes);
  std::vector<std::size_t> degrees(n);
  std::size_t k = kmin;
  for (std::size_t i = 0; i < n; ++i) {
    const double quantile =
        (static_cast<double>(i) + 0.5) / static_cast<double>(n) * total;
    while (k < kmax && cumulative[k] < quantile) ++k;
    degrees[i] = k;
  }

  // Parity repair: the stub count must be even.
  std::size_t stub_sum = 0;
  for (const auto d : degrees) stub_sum += d;
  if (stub_sum % 2 != 0) degrees.back() += 1;
  return degrees;
}

namespace {

/// Merges every component into the largest one with 1K-preserving
/// cross-component double-edge swaps: pick one edge in the small
/// component and one in the main body; the crossed replacement edges
/// necessarily join the two.  Degree sequence is exactly preserved;
/// the few broken triangles slightly reduce clustering.
void connect_components(Graph& g, util::Rng& rng) {
  for (int round = 0; round < 64; ++round) {
    const auto components = connected_components(g);
    if (components.count() <= 1) return;
    const auto main_id = components.largest();

    // Bucket one representative edge per minor component.
    std::vector<Edge> minor_edges(components.count(), Edge{0, 0});
    std::vector<bool> has_edge_in(components.count(), false);
    std::vector<Edge> main_edges;
    for (const auto& e : g.edges()) {
      const auto component = components.label[e.u];
      if (component == main_id) {
        main_edges.push_back(e);
      } else if (!has_edge_in[component]) {
        minor_edges[component] = e;
        has_edge_in[component] = true;
      }
    }
    if (main_edges.empty()) return;  // edgeless main component: give up

    for (std::uint32_t component = 0; component < components.count();
         ++component) {
      if (component == main_id || !has_edge_in[component]) continue;
      const Edge minor = minor_edges[component];
      // Earlier swaps in this round may have consumed the sampled main
      // edge; re-draw until a live one comes up.
      Edge main{0, 0};
      bool found = false;
      for (int attempt = 0; attempt < 64 && !found; ++attempt) {
        main = rng.pick(main_edges);
        found = g.has_edge(main.u, main.v);
      }
      if (!found) break;
      // Cross-component: the replacement edges cannot be loops or
      // duplicates, so the swap is always applicable.
      g.remove_edge(minor.u, minor.v);
      g.remove_edge(main.u, main.v);
      g.add_edge(minor.u, main.v);
      g.add_edge(main.u, minor.v);
    }
    // Isolated nodes (degree 0) cannot be attached degree-preservingly;
    // they are dropped by the final GCC extraction.
  }
}

}  // namespace

Graph as_level_topology(const AsLevelOptions& options, util::Rng& rng) {
  const auto degrees = power_law_degree_sequence(options);
  const auto target = dk::DegreeDistribution::from_sequence(degrees);

  // Exact-1K wiring, then alternate: push mean clustering up to the
  // preset value with 2K-preserving rewiring (which leaves 1K and the
  // JDD intact), and re-attach any small clique components the maximizer
  // split off.  The reconnection costs a little clustering, so iterate.
  Graph g = gen::matching_1k(target, rng);
  connect_components(g, rng);

  gen::ExploreOptions explore_options;
  explore_options.attempts_per_edge = options.clustering_attempts_per_edge;
  explore_options.stop_at_value = options.clustering_target;
  for (int round = 0; round < 4; ++round) {
    g = gen::explore(g, gen::ExploreObjective::maximize_clustering,
                     explore_options, rng);
    const bool was_connected = connected_components(g).count() <= 1;
    connect_components(g, rng);
    if (was_connected) break;
  }

  return largest_connected_component(g).graph;
}

}  // namespace orbis::topo
