// Synthetic HOT-like router-level topology — the stand-in for the
// Heuristically Optimal Topology of Li et al. [19] used throughout the
// paper's evaluation (939 nodes / 988 edges).
//
// Reproduces the structural regime the paper leans on:
//   * a sparse low-degree mesh core (high-bandwidth, few interfaces),
//   * mid-degree gateways hanging off the core,
//   * high-degree access routers at the PERIPHERY fanning out to
//     degree-1 end hosts (power-law-ish fanout),
//   * a handful of redundancy links (the graph is almost a tree),
//   * clustering ≈ 0 (redundancy links avoid closing triangles),
//   * strong disassortativity (hubs attach to leaves).
// This is the "targeted design" regime where degree distributions alone
// fail (1K-random ≠ HOT) and d = 3 is needed — the paper's hard case.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace orbis::topo {

struct HotOptions {
  NodeId num_core = 12;            // core mesh size (ring + chords)
  NodeId core_chords = 3;          // extra intra-core links
  NodeId gateways_per_core = 3;    // tier-2 routers per core node
  NodeId access_per_gateway = 3;   // tier-3 routers per gateway
  NodeId num_nodes = 939;          // total including end hosts
  std::size_t num_edges = 988;     // total; the excess over a tree is
                                   // added as triangle-free redundancy
  double fanout_zipf = 0.5;        // Zipf skew of the access-router fanout
};

/// Build the HOT-like topology.  The result is connected and simple with
/// exactly the requested node count; the edge count is met exactly unless
/// the redundancy budget cannot be placed without triangles (then as
/// close as possible).  Throws std::invalid_argument for inconsistent
/// sizes (e.g. num_nodes smaller than the router tiers).
Graph hot_topology(const HotOptions& options, util::Rng& rng);

inline Graph hot_topology(util::Rng& rng) {
  return hot_topology(HotOptions{}, rng);
}

}  // namespace orbis::topo
